"""Structural schema diffing.

The paper's motivating user watches a stream for *structural change*.
Validation flags individual records; :func:`diff_schemas` compares two
discovered schemas wholesale — e.g. last week's against today's — and
reports what changed, path by path:

* fields / positions added or removed;
* required fields that became optional (and vice versa);
* primitive-kind changes;
* tuple ↔ collection reinterpretations;
* collection domain growth and array-length drift (informational:
  these do not change what the schema admits).

Entity (union) alternatives are matched greedily by structural
similarity before descending, so adding one new event type to a
49-entity stream reports one added entity rather than 49 changed ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.jsontypes.paths import Path, ROOT, render_path
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
    iter_branches,
)


class ChangeKind(enum.Enum):
    """What happened at a path."""

    ADDED = "added"
    REMOVED = "removed"
    TYPE_CHANGED = "type-changed"
    REQUIRED_TO_OPTIONAL = "required-to-optional"
    OPTIONAL_TO_REQUIRED = "optional-to-required"
    RESHAPED = "reshaped"  # tuple <-> collection
    BOUNDS_CHANGED = "bounds-changed"  # array-tuple length bounds
    DOMAIN_GREW = "domain-grew"
    LENGTH_DRIFT = "length-drift"
    ENTITY_ADDED = "entity-added"
    ENTITY_REMOVED = "entity-removed"


#: Changes that affect which records validate (the rest are
#: informational statistics drift).
BREAKING_KINDS = frozenset(
    {
        ChangeKind.ADDED,
        ChangeKind.REMOVED,
        ChangeKind.TYPE_CHANGED,
        ChangeKind.REQUIRED_TO_OPTIONAL,
        ChangeKind.OPTIONAL_TO_REQUIRED,
        ChangeKind.RESHAPED,
        ChangeKind.BOUNDS_CHANGED,
        ChangeKind.ENTITY_ADDED,
        ChangeKind.ENTITY_REMOVED,
    }
)


@dataclass
class SchemaChange:
    """One reported difference."""

    path: Path
    kind: ChangeKind
    detail: str

    @property
    def breaking(self) -> bool:
        return self.kind in BREAKING_KINDS

    def __str__(self) -> str:
        return f"{render_path(self.path)}: {self.kind.value} ({self.detail})"


@dataclass
class SchemaDiff:
    """All differences between two schemas."""

    changes: List[SchemaChange] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.changes

    def breaking_changes(self) -> List[SchemaChange]:
        return [change for change in self.changes if change.breaking]

    def summary(self) -> str:
        if self.is_empty:
            return "schemas are structurally identical"
        breaking = len(self.breaking_changes())
        return (
            f"{len(self.changes)} change(s), {breaking} structural; "
            + "; ".join(str(change) for change in self.changes[:8])
            + (" ..." if len(self.changes) > 8 else "")
        )


def diff_schemas(old: Schema, new: Schema) -> SchemaDiff:
    """Compare two schemas and report path-level changes."""
    diff = SchemaDiff()
    _diff(old, new, ROOT, diff)
    return diff


def _node_label(schema: Schema) -> str:
    if isinstance(schema, PrimitiveSchema):
        return schema.kind.value
    return {
        ObjectTuple: "object-tuple",
        ArrayTuple: "array-tuple",
        ObjectCollection: "object-collection",
        ArrayCollection: "array-collection",
        Union: "union",
    }.get(type(schema), "never")


def _similarity(old: Schema, new: Schema) -> float:
    """Rough structural similarity used to pair union branches."""
    if type(old) is not type(new):
        return 0.0
    if old == new:
        return 1.0
    if isinstance(old, ObjectTuple) and isinstance(new, ObjectTuple):
        union_keys = old.all_keys | new.all_keys
        if not union_keys:
            return 1.0
        return len(old.all_keys & new.all_keys) / len(union_keys)
    return 0.5


def _diff(old: Schema, new: Schema, path: Path, diff: SchemaDiff) -> None:
    if old == new:
        return
    old_branches = list(iter_branches(old))
    new_branches = list(iter_branches(new))
    if len(old_branches) > 1 or len(new_branches) > 1:
        _diff_unions(old_branches, new_branches, path, diff)
        return
    if isinstance(old, ObjectTuple) and isinstance(new, ObjectTuple):
        _diff_object_tuples(old, new, path, diff)
        return
    if isinstance(old, ArrayTuple) and isinstance(new, ArrayTuple):
        _diff_array_tuples(old, new, path, diff)
        return
    if isinstance(old, ObjectCollection) and isinstance(
        new, ObjectCollection
    ):
        if new.domain - old.domain:
            grown = len(new.domain - old.domain)
            diff.changes.append(
                SchemaChange(
                    path,
                    ChangeKind.DOMAIN_GREW,
                    f"{grown} new key(s) observed",
                )
            )
        _diff(old.value, new.value, path + ("*",), diff)
        return
    if isinstance(old, ArrayCollection) and isinstance(new, ArrayCollection):
        if new.max_length_seen != old.max_length_seen:
            diff.changes.append(
                SchemaChange(
                    path,
                    ChangeKind.LENGTH_DRIFT,
                    f"max length {old.max_length_seen} -> "
                    f"{new.max_length_seen}",
                )
            )
        _diff(old.element, new.element, path + ("*",), diff)
        return
    # Tuple <-> collection reinterpretation of the same JSON kind.
    reshape_pairs = (
        (ObjectTuple, ObjectCollection),
        (ObjectCollection, ObjectTuple),
        (ArrayTuple, ArrayCollection),
        (ArrayCollection, ArrayTuple),
    )
    for old_type, new_type in reshape_pairs:
        if isinstance(old, old_type) and isinstance(new, new_type):
            diff.changes.append(
                SchemaChange(
                    path,
                    ChangeKind.RESHAPED,
                    f"{_node_label(old)} -> {_node_label(new)}",
                )
            )
            return
    diff.changes.append(
        SchemaChange(
            path,
            ChangeKind.TYPE_CHANGED,
            f"{_node_label(old)} -> {_node_label(new)}",
        )
    )


def _diff_unions(
    old_branches: List[Schema],
    new_branches: List[Schema],
    path: Path,
    diff: SchemaDiff,
) -> None:
    remaining_new = list(new_branches)
    for old_branch in old_branches:
        best: Optional[Tuple[float, int]] = None
        for index, new_branch in enumerate(remaining_new):
            score = _similarity(old_branch, new_branch)
            if score > 0 and (best is None or score > best[0]):
                best = (score, index)
        if best is None:
            diff.changes.append(
                SchemaChange(
                    path,
                    ChangeKind.ENTITY_REMOVED,
                    f"{_node_label(old_branch)} alternative",
                )
            )
            continue
        matched = remaining_new.pop(best[1])
        _diff(old_branch, matched, path, diff)
    for new_branch in remaining_new:
        diff.changes.append(
            SchemaChange(
                path,
                ChangeKind.ENTITY_ADDED,
                f"{_node_label(new_branch)} alternative",
            )
        )


def _diff_object_tuples(
    old: ObjectTuple, new: ObjectTuple, path: Path, diff: SchemaDiff
) -> None:
    for key in sorted(new.all_keys - old.all_keys):
        diff.changes.append(
            SchemaChange(path + (key,), ChangeKind.ADDED, "new field")
        )
    for key in sorted(old.all_keys - new.all_keys):
        diff.changes.append(
            SchemaChange(path + (key,), ChangeKind.REMOVED, "field gone")
        )
    for key in sorted(old.all_keys & new.all_keys):
        was_required = key in old.required_keys
        is_required = key in new.required_keys
        if was_required and not is_required:
            diff.changes.append(
                SchemaChange(
                    path + (key,),
                    ChangeKind.REQUIRED_TO_OPTIONAL,
                    "field became optional",
                )
            )
        elif not was_required and is_required:
            diff.changes.append(
                SchemaChange(
                    path + (key,),
                    ChangeKind.OPTIONAL_TO_REQUIRED,
                    "field became required",
                )
            )
        _diff(
            old.field_schema(key),
            new.field_schema(key),
            path + (key,),
            diff,
        )


def _diff_array_tuples(
    old: ArrayTuple, new: ArrayTuple, path: Path, diff: SchemaDiff
) -> None:
    if new.min_length != old.min_length or len(new.elements) != len(
        old.elements
    ):
        diff.changes.append(
            SchemaChange(
                path,
                ChangeKind.BOUNDS_CHANGED,
                f"lengths [{old.min_length}, {len(old.elements)}] -> "
                f"[{new.min_length}, {len(new.elements)}]",
            )
        )
    overlap = min(len(old.elements), len(new.elements))
    for index in range(overlap):
        _diff(
            old.elements[index], new.elements[index], path + (index,), diff
        )
    for index in range(overlap, len(new.elements)):
        diff.changes.append(
            SchemaChange(path + (index,), ChangeKind.ADDED, "new position")
        )
    for index in range(overlap, len(old.elements)):
        diff.changes.append(
            SchemaChange(
                path + (index,), ChangeKind.REMOVED, "position gone"
            )
        )
