"""Record validation against discovered schemas.

The paper's motivating use case: an operations engineer wants new
records checked against the "typical" schema, with structural changes
surfaced as validation failures.  :func:`validate_records` produces a
:class:`ValidationReport` with per-record outcomes and, for failures,
a best-effort *explanation* — which branch came closest and which
paths diverged — since a bare reject is not actionable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.jsontypes.paths import Path, ROOT, render_path
from repro.jsontypes.types import (
    ArrayType,
    JsonType,
    JsonValue,
    ObjectType,
    PrimitiveType,
    type_of,
)
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
    iter_branches,
)


@dataclass
class Violation:
    """One structural divergence between a record and a schema branch."""

    path: Path
    reason: str

    def __str__(self) -> str:
        return f"{render_path(self.path)}: {self.reason}"


@dataclass
class RecordOutcome:
    """Validation outcome of a single record."""

    index: int
    valid: bool
    violations: List[Violation] = field(default_factory=list)


@dataclass
class ValidationReport:
    """Aggregate validation results over a collection of records."""

    outcomes: List[RecordOutcome]

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def valid_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.valid)

    @property
    def invalid_count(self) -> int:
        return self.total - self.valid_count

    @property
    def recall(self) -> float:
        """Fraction of records accepted — Table 1's measure."""
        if not self.outcomes:
            return 1.0
        return self.valid_count / self.total

    def failures(self) -> List[RecordOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.valid]

    def failure_indices(self) -> List[int]:
        return [outcome.index for outcome in self.outcomes if not outcome.valid]


def validate_type(schema: Schema, tau: JsonType) -> bool:
    """Admission check for a record type (Definition 1)."""
    return schema.admits_type(tau)


def validate_records(
    schema: Schema,
    records: Iterable[JsonValue],
    *,
    explain: bool = False,
) -> ValidationReport:
    """Validate parsed JSON records against a schema.

    ``explain=True`` attaches violations from the closest-matching
    branch for every rejected record (slower).
    """
    outcomes: List[RecordOutcome] = []
    for index, record in enumerate(records):
        tau = type_of(record)
        if schema.admits_type(tau):
            outcomes.append(RecordOutcome(index=index, valid=True))
            continue
        violations: List[Violation] = []
        if explain:
            violations = explain_rejection(schema, tau)
        outcomes.append(
            RecordOutcome(index=index, valid=False, violations=violations)
        )
    return ValidationReport(outcomes)


def explain_rejection(schema: Schema, tau: JsonType) -> List[Violation]:
    """Violations against the *closest* top-level branch.

    Closest = fewest violations; deterministic tie-break by branch
    order.  Returns a single catch-all violation for :data:`NEVER`.
    """
    if schema is NEVER:
        return [Violation(ROOT, "schema admits no records")]
    best: Optional[List[Violation]] = None
    for branch in iter_branches(schema):
        violations = _collect_violations(branch, tau, ROOT)
        if not violations:
            return []
        if best is None or len(violations) < len(best):
            best = violations
    return best or [Violation(ROOT, "no branches to compare")]


def _collect_violations(
    schema: Schema, tau: JsonType, path: Path
) -> List[Violation]:
    """All divergences between ``tau`` and one (non-union) branch."""
    if schema is NEVER:
        return [Violation(path, "schema admits no records")]
    if isinstance(schema, Union):
        candidates: List[List[Violation]] = [
            _collect_violations(branch, tau, path)
            for branch in schema.branches
        ]
        return min(candidates, key=len)
    if isinstance(schema, PrimitiveSchema):
        if isinstance(tau, PrimitiveType) and tau.kind == schema.kind:
            return []
        return [
            Violation(
                path,
                f"expected {schema.kind.value}, found {tau.kind.value}",
            )
        ]
    if isinstance(schema, ObjectTuple):
        if not isinstance(tau, ObjectType):
            return [
                Violation(path, f"expected object, found {tau.kind.value}")
            ]
        violations: List[Violation] = []
        present = tau.key_set()
        for key in sorted(schema.required_keys - present):
            violations.append(
                Violation(path, f"missing required field {key!r}")
            )
        for key in sorted(present - schema.all_keys):
            violations.append(Violation(path, f"unexpected field {key!r}"))
        for key, value in tau.items():
            if key in schema.all_keys:
                violations.extend(
                    _collect_violations(
                        schema.field_schema(key), value, path + (key,)
                    )
                )
        return violations
    if isinstance(schema, ArrayTuple):
        if not isinstance(tau, ArrayType):
            return [
                Violation(path, f"expected array, found {tau.kind.value}")
            ]
        violations = []
        if len(tau) < schema.min_length:
            violations.append(
                Violation(
                    path,
                    f"array too short: {len(tau)} < {schema.min_length}",
                )
            )
        if len(tau) > len(schema.elements):
            violations.append(
                Violation(
                    path,
                    f"array too long: {len(tau)} > {len(schema.elements)}",
                )
            )
        for index in range(min(len(tau), len(schema.elements))):
            violations.extend(
                _collect_violations(
                    schema.elements[index],
                    tau.elements[index],
                    path + (index,),
                )
            )
        return violations
    if isinstance(schema, ArrayCollection):
        if not isinstance(tau, ArrayType):
            return [
                Violation(path, f"expected array, found {tau.kind.value}")
            ]
        violations = []
        for index, value in enumerate(tau.elements):
            violations.extend(
                _collect_violations(schema.element, value, path + (index,))
            )
        return violations
    if isinstance(schema, ObjectCollection):
        if not isinstance(tau, ObjectType):
            return [
                Violation(path, f"expected object, found {tau.kind.value}")
            ]
        violations = []
        for key, value in tau.items():
            violations.extend(
                _collect_violations(schema.value, value, path + (key,))
            )
        return violations
    raise TypeError(f"not a schema: {schema!r}")


def recall_against(
    schema: Schema, test_types: Sequence[JsonType]
) -> float:
    """Fraction of test *types* admitted — the Table 1 measure."""
    if not test_types:
        return 1.0
    admitted = sum(1 for tau in test_types if schema.admits_type(tau))
    return admitted / len(test_types)


def first_failures(
    schema: Schema, records: Sequence[JsonValue], limit: int = 5
) -> List[Tuple[int, List[Violation]]]:
    """The first ``limit`` rejected records with explanations."""
    failures: List[Tuple[int, List[Violation]]] = []
    for index, record in enumerate(records):
        tau = type_of(record)
        if schema.admits_type(tau):
            continue
        failures.append((index, explain_rejection(schema, tau)))
        if len(failures) >= limit:
            break
    return failures
