"""Golden fixture tests: every rule R1–R7 fires on its fixture."""

from pathlib import Path

from repro.analysis import Severity, all_rules, analyze_source

FIXTURES = Path(__file__).parent / "lint_fixtures"


def analyze_fixture(name: str, path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return analyze_source(source, path)


def rule_ids(findings):
    return sorted(finding.rule_id for finding in findings)


class TestR1CodecDeterminism:
    def test_fires_in_critical_module(self):
        findings, _ = analyze_fixture(
            "r1_set_iteration.py", "src/repro/discovery/state.py"
        )
        assert rule_ids(findings) == ["R1", "R1", "R1"]
        messages = " | ".join(f.message for f in findings)
        assert "for loop" in messages
        assert "list()" in messages
        assert "id()" in messages

    def test_set_iteration_allowed_outside_critical_modules(self):
        findings, _ = analyze_fixture(
            "r1_set_iteration.py", "src/repro/entities/bimax.py"
        )
        # Only the unstable sort key survives: that law is global.
        assert rule_ids(findings) == ["R1"]
        assert "id()" in findings[0].message

    def test_severity(self):
        findings, _ = analyze_fixture(
            "r1_set_iteration.py", "src/repro/discovery/codec.py"
        )
        assert all(f.severity is Severity.ERROR for f in findings)


class TestR2Picklability:
    def test_flags_lambdas_and_local_defs(self):
        findings, _ = analyze_fixture(
            "r2_lambda_fanout.py", "src/repro/discovery/jxplain.py"
        )
        assert rule_ids(findings) == ["R2", "R2", "R2", "R2"]
        messages = [f.message for f in findings]
        assert sum("a lambda" in m for m in messages) == 3
        assert sum("locally-defined function 'local'" in m for m in messages) == 1
        assert any("map_shards" in m for m in messages)

    def test_partial_over_module_function_is_fine(self):
        source = (
            "from functools import partial\n"
            "def _task(x):\n"
            "    return x\n"
            "def run(executor, items):\n"
            "    return executor.map_list(partial(_task), items)\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert findings == []


class TestR3ExceptionDiscipline:
    def test_flags_silent_swallow_only(self):
        findings, _ = analyze_fixture("r3_swallow.py", "src/repro/engine/x.py")
        assert rule_ids(findings) == ["R3"]
        assert findings[0].severity is Severity.ERROR
        assert "swallows the error" in findings[0].message

    def test_returning_the_exception_records_it(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except Exception as exc:\n"
            "        return exc\n"
            "    return None\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert findings == []

    def test_bare_except_and_bare_return_flagged(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except:\n"
            "        return\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert rule_ids(findings) == ["R3"]
        assert "bare except" in findings[0].message


class TestR4RngDiscipline:
    def test_flags_global_rng_calls(self):
        findings, _ = analyze_fixture("r4_global_rng.py", "src/repro/x.py")
        assert rule_ids(findings) == ["R4", "R4"]
        messages = " | ".join(f.message for f in findings)
        assert "random.shuffle" in messages
        assert "random.randint" in messages

    def test_numpy_global_flagged_but_default_rng_allowed(self):
        source = (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(3) + np.random.randint(3)\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert rule_ids(findings) == ["R4"]
        assert "np.random.randint" in findings[0].message


class TestR5CounterDiscipline:
    def test_flags_private_nonhelper_and_subscript(self):
        findings, _ = analyze_fixture(
            "r5_counter_poke.py", "src/repro/engine/executor.py"
        )
        assert rule_ids(findings) == ["R5", "R5", "R5"]
        messages = " | ".join(f.message for f in findings)
        assert "private counter state" in messages
        assert "'.increment'" in messages
        assert "item access" in messages

    def test_instrument_module_itself_is_exempt(self):
        findings, _ = analyze_fixture(
            "r5_counter_poke.py", "src/repro/engine/instrument.py"
        )
        assert findings == []


class TestR6RegistryCompleteness:
    def test_codec_pair_check(self):
        findings, _ = analyze_fixture(
            "r6_codec_missing_pair.py", "src/repro/discovery/codec.py"
        )
        assert rule_ids(findings) == ["R6"]
        assert "write_header() has no matching read_header()" in (
            findings[0].message
        )

    def test_codec_pair_check_only_in_codec_modules(self):
        findings, _ = analyze_fixture(
            "r6_codec_missing_pair.py", "src/repro/discovery/state.py"
        )
        assert findings == []

    def test_all_drift(self):
        findings, _ = analyze_fixture(
            "r6_all_drift.py", "src/repro/discovery/__init__.py"
        )
        assert rule_ids(findings) == ["R6", "R6"]
        by_severity = {f.severity: f for f in findings}
        assert "missing_name" in by_severity[Severity.ERROR].message
        assert "basename" in by_severity[Severity.WARNING].message


class TestR7StageNameDiscipline:
    def fixture_facts(self):
        _, facts = analyze_fixture(
            "r7_stage_names.py", "tests/robustness/test_x.py"
        )
        return facts["R7"]

    def test_collects_definitions_and_references(self):
        facts = self.fixture_facts()
        defined = {f["stage"] for f in facts if f["kind"] == "defined"}
        refs = {f["stage"] for f in facts if f["kind"] == "ref"}
        assert defined == {"parse", "synthesize"}
        assert refs == {"parse", "ghost-stage"}

    def test_finalize_flags_unknown_stage(self):
        (rule,) = all_rules(only=["R7"])
        findings = rule.finalize({"tests/robustness/test_x.py": self.fixture_facts()})
        assert rule_ids(findings) == ["R7"]
        assert "'ghost-stage'" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_finalize_silent_without_definitions(self):
        (rule,) = all_rules(only=["R7"])
        refs_only = [{"kind": "ref", "stage": "ghost", "line": 3}]
        assert rule.finalize({"a.py": refs_only}) == []


class TestSuppressions:
    def test_inline_disable(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except Exception:  # repro-lint: disable=R3\n"
            "        pass\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert findings == []

    def test_disable_next_line(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    # repro-lint: disable-next-line=R3\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert findings == []

    def test_disable_file_in_header(self):
        source = (
            "# repro-lint: disable-file=R4\n"
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert findings == []

    def test_disable_file_ignored_past_header_window(self):
        padding = "\n" * 15
        source = (
            padding
            + "# repro-lint: disable-file=R4\n"
            + "import random\n"
            + "def draw():\n"
            + "    return random.random()\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert rule_ids(findings) == ["R4"]

    def test_disable_wrong_rule_keeps_finding(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except Exception:  # repro-lint: disable=R1\n"
            "        pass\n"
        )
        findings, _ = analyze_source(source, "mod.py")
        assert rule_ids(findings) == ["R3"]

    def test_suppressions_can_be_bypassed(self):
        source = (
            "def probe(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except Exception:  # repro-lint: disable=R3\n"
            "        pass\n"
        )
        findings, _ = analyze_source(
            source, "mod.py", respect_suppressions=False
        )
        assert rule_ids(findings) == ["R3"]
