"""Interprocedural analysis tests: call graph, R8–R10, incrementality.

R8–R10 only resolve in the cross-file finalize phase, so (unlike the
R1–R7 golden fixtures) these tests build small multi-file projects in
``tmp_path`` and run :func:`repro.analysis.run_lint` over them.  Paths
inside the planted trees matter: sink scope is path-based
(``repro/discovery/codec.py`` etc.), and module names for import
resolution derive from the relative paths.
"""

import ast

import pytest

from repro.analysis import Severity, run_lint
from repro.analysis.summaries import (
    build_project_model,
    extract_interproc_facts,
)
from repro.engine.instrument import counters

CODEC = (
    "def write_keys(writer, keys):\n"
    "    for key in keys:\n"
    "        writer.string(key)\n"
    "\n"
    "\n"
    "def read_keys(reader):\n"
    "    return list(reader)\n"
)

HELPER_TAINTED = (
    "def gather_keys(record):\n"
    "    return {key for key in record}\n"
)

HELPER_CLEAN = (
    "def gather_keys(record):\n"
    "    return sorted(record)\n"
)

PIPELINE = (
    "from repro.discovery.codec import write_keys\n"
    "from repro.discovery.helpers import gather_keys\n"
    "\n"
    "\n"
    "def emit(writer, record):\n"
    "    write_keys(writer, gather_keys(record))\n"
)


def plant(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint(tree, **kwargs):
    kwargs.setdefault("root", str(tree))
    kwargs.setdefault("cache_path", None)
    return run_lint([str(tree / "src")], **kwargs)


def findings_for(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


class TestR8DeterminismTaint:
    def test_set_two_calls_from_codec_sink_is_caught(self, tmp_path):
        # The acceptance case: a helper returning a set feeds a codec
        # writer two calls away — no single file shows the violation.
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
            "src/repro/discovery/helpers.py": HELPER_TAINTED,
            "src/repro/pipeline.py": PIPELINE,
        })
        result = lint(tree)
        r8 = findings_for(result, "R8")
        assert len(r8) == 1, [f.describe() for f in result.findings]
        (finding,) = r8
        assert finding.file == "src/repro/pipeline.py"
        assert finding.line == 6
        assert finding.severity is Severity.ERROR
        assert "set-order" in finding.message
        assert "write_keys" in finding.message

    def test_sorted_sanitizes_the_whole_path(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
            "src/repro/discovery/helpers.py": HELPER_TAINTED,
            "src/repro/pipeline.py": PIPELINE.replace(
                "gather_keys(record))", "sorted(gather_keys(record)))"
            ),
        })
        assert findings_for(lint(tree), "R8") == []

    def test_sorting_inside_the_helper_also_sanitizes(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
            "src/repro/discovery/helpers.py": HELPER_CLEAN,
            "src/repro/pipeline.py": PIPELINE,
        })
        assert findings_for(lint(tree), "R8") == []

    def test_direct_sink_in_sink_scope_module(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/schema/render.py": (
                "def render_names(schemas):\n"
                "    return ', '.join({s.name for s in schemas})\n"
            ),
        })
        r8 = findings_for(lint(tree), "R8")
        # Both sinks fire: the str.join iteration and (render* being a
        # sink-named function) the returned rendering itself.
        assert len(r8) == 2
        messages = " | ".join(f.message for f in r8)
        assert "join" in messages

    def test_pragma_waives_the_call_site(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
            "src/repro/discovery/helpers.py": HELPER_TAINTED,
            "src/repro/pipeline.py": PIPELINE.replace(
                "write_keys(writer, gather_keys(record))",
                "write_keys(writer, gather_keys(record))"
                "  # repro-lint: disable=R8",
            ),
        })
        assert findings_for(lint(tree), "R8") == []


class TestR9SharedStateMutation:
    def test_task_mutating_module_global(self, tmp_path):
        tree = plant(tmp_path, {
            "src/proj/runner.py": (
                "SEEN = []\n"
                "\n"
                "\n"
                "def record(item):\n"
                "    SEEN.append(item)\n"
                "    return item\n"
                "\n"
                "\n"
                "def run(executor, items):\n"
                "    return executor.map_list(record, items)\n"
            ),
        })
        r9 = findings_for(lint(tree), "R9")
        assert len(r9) == 1
        assert r9[0].file == "src/proj/runner.py"
        assert "SEEN" in r9[0].message
        assert "map_list" in r9[0].message

    def test_bound_method_task_flags_shared_self(self, tmp_path):
        tree = plant(tmp_path, {
            "src/proj/collector.py": (
                "class Collector:\n"
                "    def __init__(self):\n"
                "        self.items = []\n"
                "\n"
                "    def add(self, item):\n"
                "        self.items.append(item)\n"
                "\n"
                "    def run(self, executor, items):\n"
                "        return executor.map_list(self.add, items)\n"
            ),
        })
        r9 = findings_for(lint(tree), "R9")
        assert len(r9) == 1
        assert "shared instance state (self)" in r9[0].message

    def test_counters_api_is_exempt(self, tmp_path):
        tree = plant(tmp_path, {
            "src/proj/runner.py": (
                "from repro.engine.instrument import counters\n"
                "\n"
                "\n"
                "def record(item):\n"
                "    counters.add('runner.items')\n"
                "    return item\n"
                "\n"
                "\n"
                "def run(executor, items):\n"
                "    return executor.map_list(record, items)\n"
            ),
        })
        assert findings_for(lint(tree), "R9") == []

    def test_pure_task_is_clean(self, tmp_path):
        tree = plant(tmp_path, {
            "src/proj/runner.py": (
                "def double(item):\n"
                "    out = []\n"
                "    out.append(item)\n"
                "    return out\n"
                "\n"
                "\n"
                "def run(executor, items):\n"
                "    return executor.map_list(double, items)\n"
            ),
        })
        assert findings_for(lint(tree), "R9") == []


PROTOCOL_BASE = (
    "class DiscoveryState:\n"
    "    def empty(self):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def absorb(self, value):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def merge(self, other):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def to_bytes(self):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def from_bytes(self, payload):\n"
    "        raise NotImplementedError\n"
)

GOOD_STATE = (
    "\n"
    "\n"
    "class GoodState(DiscoveryState):\n"
    "    def empty(self):\n"
    "        return GoodState()\n"
    "\n"
    "    def absorb(self, value):\n"
    "        return self\n"
    "\n"
    "    def merge(self, other):\n"
    "        return self\n"
    "\n"
    "    def to_bytes(self):\n"
    "        return b''\n"
    "\n"
    "    def from_bytes(self, payload):\n"
    "        return GoodState()\n"
)

BROKEN_STATE = (
    "\n"
    "\n"
    "class BrokenState(DiscoveryState):\n"
    "    def empty(self):\n"
    "        return BrokenState()\n"
    "\n"
    "    def absorb(self, value):\n"
    "        return self\n"
    "\n"
    "    def merge(self, other):\n"
    "        return self\n"
    "\n"
    "    def to_bytes(self):\n"
    "        return b''\n"
)


class TestR10MonoidProtocol:
    def test_missing_surface_method_flagged_on_leaf(self, tmp_path):
        tree = plant(tmp_path, {
            "src/proj/states.py": PROTOCOL_BASE + GOOD_STATE + BROKEN_STATE,
        })
        r10 = findings_for(lint(tree), "R10")
        assert len(r10) == 1
        assert "BrokenState" in r10[0].message
        assert "from_bytes" in r10[0].message

    def test_abstract_intermediates_are_not_leaves(self, tmp_path):
        # BrokenState grows a subclass that completes the surface: the
        # law binds the leaf, not the intermediate.
        tree = plant(tmp_path, {
            "src/proj/states.py": (
                PROTOCOL_BASE
                + BROKEN_STATE
                + "\n"
                "\n"
                "class FixedState(BrokenState):\n"
                "    def from_bytes(self, payload):\n"
                "        return FixedState()\n"
            ),
        })
        assert findings_for(lint(tree), "R10") == []

    def test_codec_pair_arity_mismatch(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": (
                "def write_block(writer, items):\n"
                "    return None\n"
                "\n"
                "\n"
                "def read_block(reader, extra, flags):\n"
                "    return None\n"
            ),
        })
        r10 = findings_for(lint(tree), "R10")
        assert len(r10) == 1
        assert "write_block()/read_block()" in r10[0].message
        assert "arity" in r10[0].message

    def test_matching_arity_is_clean(self, tmp_path):
        tree = plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
        })
        assert findings_for(lint(tree), "R10") == []


class TestCallGraphIdioms:
    """S3: the builder resolves the repo's real dispatch idioms."""

    SOURCES = {
        "src/proj/worker.py": (
            "from functools import partial\n"
            "\n"
            "\n"
            "def _impl(bound, item):\n"
            "    return bound + item\n"
            "\n"
            "\n"
            "task = partial(_impl, 3)\n"
        ),
        "src/proj/registry.py": (
            "_REGISTRY = {}\n"
            "\n"
            "\n"
            "def state_for_algorithm(name):\n"
            "    return _REGISTRY[name]()\n"
        ),
        "src/proj/driver.py": (
            "from proj.registry import state_for_algorithm\n"
            "from proj.worker import task\n"
            "\n"
            "\n"
            "class Driver:\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state.pop('cache', None)\n"
            "        return state\n"
            "\n"
            "    def helper(self):\n"
            "        return 1\n"
            "\n"
            "    def run(self, items):\n"
            "        task(2)\n"
            "        state_for_algorithm('x')\n"
            "        return self.helper()\n"
            "\n"
            "\n"
            "class Uniq:\n"
            "    def merge_shard(self, other):\n"
            "        return other\n"
            "\n"
            "\n"
            "def poke(factory):\n"
            "    return factory().merge_shard(1)\n"
        ),
    }

    @pytest.fixture
    def model(self):
        facts = {
            path: extract_interproc_facts(path, ast.parse(source))
            for path, source in self.SOURCES.items()
        }
        return build_project_model(facts)

    def test_pinned_edges(self, model):
        edges = model.graph.edges
        # Imported module-level partial task: the edge lands on the
        # underlying implementation, not the binding name.
        assert "proj.worker::_impl" in edges["proj.driver::Driver.run"]
        # Registry dispatch through a from-import.
        assert (
            "proj.registry::state_for_algorithm"
            in edges["proj.driver::Driver.run"]
        )
        # self.helper() resolves through the enclosing class.
        assert (
            "proj.driver::Driver.helper"
            in edges["proj.driver::Driver.run"]
        )
        # An attribute call on an opaque receiver resolves because
        # exactly one project class defines the method.
        assert edges["proj.driver::poke"] == ["proj.driver::Uniq.merge_shard"]

    def test_dunder_methods_are_graph_nodes(self, model):
        assert "proj.driver::Driver.__getstate__" in model.graph.edges
        assert (
            model.graph.file_of["proj.driver::Driver.__getstate__"]
            == "src/proj/driver.py"
        )

    def test_dependent_files_follow_reverse_edges(self, model):
        dependents = model.graph.dependent_files(["src/proj/worker.py"])
        assert dependents == {"src/proj/worker.py", "src/proj/driver.py"}


class TestIncrementalFinalize:
    """S1 + the warm-cache acceptance: cross-file verdicts stay fresh,
    and only the transitive dependents of an edit recompute."""

    def planted(self, tmp_path, helper):
        return plant(tmp_path, {
            "src/repro/discovery/codec.py": CODEC,
            "src/repro/discovery/helpers.py": helper,
            "src/repro/pipeline.py": PIPELINE,
        })

    def test_editing_one_file_updates_cross_file_verdict(self, tmp_path):
        # The PR-6 staleness bug: pipeline.py is served from the
        # per-file cache, but its R8 verdict depends on helpers.py.
        tree = self.planted(tmp_path, HELPER_CLEAN)
        cache = str(tmp_path / "cache.json")
        first = lint(tree, cache_path=cache)
        assert findings_for(first, "R8") == []
        (tree / "src/repro/discovery/helpers.py").write_text(HELPER_TAINTED)
        second = lint(tree, cache_path=cache)
        r8 = findings_for(second, "R8")
        assert len(r8) == 1
        assert r8[0].file == "src/repro/pipeline.py"
        # And back: the fix clears the verdict through the same cache.
        (tree / "src/repro/discovery/helpers.py").write_text(HELPER_CLEAN)
        third = lint(tree, cache_path=cache)
        assert findings_for(third, "R8") == []

    def test_unchanged_rerun_replays_finalize_from_cache(self, tmp_path):
        tree = self.planted(tmp_path, HELPER_TAINTED)
        cache = str(tmp_path / "cache.json")
        first = lint(tree, cache_path=cache)
        counters.reset()
        second = lint(tree, cache_path=cache)
        assert counters.get("lint.finalize_cache_hits") == 1
        assert counters.get("lint.finalize_runs") == 0
        assert second.findings == first.findings

    def test_edit_recomputes_only_transitive_dependents(self, tmp_path):
        # d.py is unrelated to the a←b←c call chain: editing a.py must
        # re-resolve {a, b, c} and leave d alone.
        tree = plant(tmp_path, {
            "src/proj/a.py": "def base(x):\n    return x + 1\n",
            "src/proj/b.py": (
                "from proj.a import base\n"
                "def mid(x):\n"
                "    return base(x)\n"
            ),
            "src/proj/c.py": (
                "from proj.b import mid\n"
                "def top(x):\n"
                "    return mid(x)\n"
            ),
            "src/proj/d.py": "def lone(x):\n    return x\n",
        })
        cache = str(tmp_path / "cache.json")
        lint(tree, cache_path=cache)
        (tree / "src/proj/a.py").write_text("def base(x):\n    return x + 2\n")
        counters.reset()
        lint(tree, cache_path=cache)
        assert counters.get("lint.summary_files_recomputed") == 3
        assert counters.get("lint.summary_functions_recomputed") == 3

    def test_deleting_the_callee_still_invalidates_callers(self, tmp_path):
        # The current call graph has no edge into a deleted function;
        # invalidation must come from the previous run's dependency map.
        tree = self.planted(tmp_path, HELPER_TAINTED)
        cache = str(tmp_path / "cache.json")
        first = lint(tree, cache_path=cache)
        assert len(findings_for(first, "R8")) == 1
        (tree / "src/repro/discovery/helpers.py").write_text(
            "def unrelated():\n    return 0\n"
        )
        second = lint(tree, cache_path=cache)
        # gather_keys no longer exists: the call no longer resolves,
        # so optimistically there is nothing to report.
        assert findings_for(second, "R8") == []
