"""Fixture: a codec encoder with no decoder counterpart (R6)."""


def write_header(out):
    out.append(b"hdr")


def dumps_state(state):
    return b""


def loads_state(data):
    return None
