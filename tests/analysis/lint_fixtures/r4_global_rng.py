"""Fixture: draws from the global random-module RNG (R4)."""

import random
from random import randint


def sample(items):
    random.shuffle(items)
    return randint(0, 10)


def seeded(seed):
    rng = random.Random(seed)
    return rng.random()
