"""Fixture: hash-ordered set iteration reaching codec output (R1)."""


def encode(keys, out):
    names = {key for key in keys}
    for name in names:
        out.append(name)


def collect(keys):
    return list(set(keys))


def order(items):
    return sorted(items, key=id)


def ordered_fine(keys, out):
    for name in sorted(set(keys)):
        out.append(name)
