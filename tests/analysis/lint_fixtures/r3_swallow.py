"""Fixture: a broad except that swallows the error (R3)."""


def risky(task):
    try:
        return task()
    except Exception:
        pass


def records_it(task):
    try:
        return task()
    except Exception as exc:
        last_error = exc
        return last_error


def narrow_is_fine(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        pass
