"""Fixture: fault-plan stage references vs defined stage labels (R7)."""


def pipeline(timer, records):
    with timer.stage("parse"):
        parsed = list(records)
    with timer.stage("synthesize"):
        return parsed


def chaos(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "parse:0:raise,ghost-stage:1:raise")
