"""Fixture: ``__all__`` drift in a package ``__init__`` (R6)."""

from os.path import basename
from os.path import join

__all__ = ["join", "missing_name"]
