"""Fixture: counter mutations bypassing the thread-safe helpers (R5)."""

from repro.engine.instrument import counters


def bump():
    counters._values["lint"] = 1
    counters.increment("lint")
    counters["lint"] = 2


def fine():
    counters.add("lint", 3)
    return counters.get("lint")
