"""Fixture: unpicklable callables at executor fan-out sites (R2)."""

from functools import partial


def _double(value):
    return 2 * value


def bad(executor, items):
    def local(value):
        return value + 1

    first = executor.map_list(lambda value: value * 2, items)
    second = executor.map_list(local, items)
    third = executor.map_list(partial(lambda value, base: value, 1), items)
    return first, second, third


def bad_shards(coordinator, tasks):
    return coordinator.map_shards(lambda task: task, tasks)


def fine(executor, items):
    return executor.map_list(partial(_double), items)


def fine_shards(coordinator, tasks):
    return coordinator.map_shards(_double, tasks)
