"""End-to-end tests of ``repro lint`` through the CLI entry point."""

import json

import pytest

from repro.cli import main

SWALLOW = (
    "def probe(fn):\n"
    "    try:\n"
    "        fn()\n"
    "    except Exception:\n"
    "        pass\n"
)

CLEAN = "def double(x):\n    return 2 * x\n"


@pytest.fixture
def dirty_dir(tmp_path, monkeypatch):
    # Anchor the CLI's cwd-relative defaults (baseline, cache, the
    # findings' relative paths) inside the sandbox.
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(SWALLOW)
    return "pkg"


@pytest.fixture
def clean_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "good.py").write_text(CLEAN)
    return "pkg"


class TestExitCodes:
    def test_clean_run_exits_zero(self, clean_dir, capsys):
        assert main(["lint", clean_dir, "--no-cache"]) == 0
        assert "findings: none" in capsys.readouterr().out

    def test_findings_gate(self, dirty_dir, capsys):
        assert main(["lint", dirty_dir, "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "pkg/bad.py:4:5: R3 [error]" in out

    def test_fail_on_never(self, dirty_dir):
        assert main(
            ["lint", dirty_dir, "--no-cache", "--fail-on", "never"]
        ) == 0

    def test_fail_on_error_ignores_warnings(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "fanout.py").write_text(
            "def run(executor, items):\n"
            "    return executor.map_list(lambda x: x, items)\n"
        )
        assert main(["lint", "pkg", "--no-cache"]) == 1
        assert main(
            ["lint", "pkg", "--no-cache", "--fail-on", "error"]
        ) == 0

    def test_missing_path_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "nope", "--no-cache"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRuleSelection:
    def test_rules_flag(self, dirty_dir):
        assert main(
            ["lint", dirty_dir, "--no-cache", "--rules", "R1,R4"]
        ) == 0
        assert main(
            ["lint", dirty_dir, "--no-cache", "--rules", "R3"]
        ) == 1


class TestJsonOutput:
    def test_report_written_to_file(self, dirty_dir, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = main(
            [
                "lint",
                dirty_dir,
                "--no-cache",
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert code == 1
        payload = json.loads(target.read_text())
        assert payload["summary"]["by_rule"] == {"R3": 1}
        # A human summary still lands on stdout.
        assert "findings:" in capsys.readouterr().out


class TestSarifOutput:
    def test_report_validates_and_names_the_rule(
        self, dirty_dir, tmp_path, capsys
    ):
        from repro.analysis import validate_sarif

        target = tmp_path / "lint.sarif"
        code = main(
            [
                "lint",
                dirty_dir,
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(target),
            ]
        )
        assert code == 1
        payload = json.loads(target.read_text())
        assert validate_sarif(payload) == []
        (entry,) = payload["runs"][0]["results"]
        assert entry["ruleId"] == "R3"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "pkg/bad.py"
        assert "findings:" in capsys.readouterr().out


class TestBaselineFlow:
    def test_update_then_gate_green(self, dirty_dir, capsys):
        baseline = "baseline.json"
        assert main(
            [
                "lint",
                dirty_dir,
                "--no-cache",
                "--update-baseline",
                "--baseline",
                baseline,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1 entries (+1 added, -0 removed)" in out
        assert main(
            ["lint", dirty_dir, "--no-cache", "--baseline", baseline]
        ) == 0

    def test_update_prunes_stale_fingerprints(
        self, dirty_dir, tmp_path, capsys
    ):
        baseline = "baseline.json"
        main(
            [
                "lint",
                dirty_dir,
                "--no-cache",
                "--update-baseline",
                "--baseline",
                baseline,
            ]
        )
        capsys.readouterr()
        # The violation goes away: a second update must drop the now
        # stale fingerprint instead of letting it accumulate.
        (tmp_path / "pkg" / "bad.py").write_text(CLEAN)
        assert main(
            [
                "lint",
                dirty_dir,
                "--no-cache",
                "--update-baseline",
                "--baseline",
                baseline,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "0 entries (+0 added, -1 removed)" in out
        assert json.loads((tmp_path / baseline).read_text())["findings"] == []

    def test_update_keeps_entries_outside_the_linted_scope(
        self, dirty_dir, tmp_path, capsys
    ):
        other = tmp_path / "other"
        other.mkdir()
        (other / "bad.py").write_text(SWALLOW)
        baseline = "baseline.json"
        main(
            [
                "lint",
                "pkg",
                "other",
                "--no-cache",
                "--update-baseline",
                "--baseline",
                baseline,
            ]
        )
        capsys.readouterr()
        # A scoped re-update must not discard the waiver for the
        # directory it never looked at.
        main(
            [
                "lint",
                "pkg",
                "--no-cache",
                "--update-baseline",
                "--baseline",
                baseline,
            ]
        )
        assert "2 entries (+0 added, -0 removed)" in capsys.readouterr().out
        assert main(
            ["lint", "pkg", "other", "--no-cache", "--baseline", baseline]
        ) == 0

    def test_default_baseline_discovered_in_cwd(self, dirty_dir, capsys):
        assert main(
            ["lint", dirty_dir, "--no-cache", "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(["lint", dirty_dir, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "+1 baselined" in out

    def test_show_baselined(self, dirty_dir, capsys):
        main(["lint", dirty_dir, "--no-cache", "--update-baseline"])
        capsys.readouterr()
        main(["lint", dirty_dir, "--no-cache", "--show-baselined"])
        assert "(baselined)" in capsys.readouterr().out


class TestCacheFlag:
    def test_cache_file_written_and_used(self, dirty_dir, capsys):
        cache = "lint-cache.json"
        main(["lint", dirty_dir, "--cache", cache, "--fail-on", "never"])
        capsys.readouterr()
        main(["lint", dirty_dir, "--cache", cache, "--fail-on", "never"])
        assert "1 cached" in capsys.readouterr().out
