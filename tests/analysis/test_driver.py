"""Driver tests: discovery, caching, executor fan-out, baseline."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintError,
    Severity,
    discover_files,
    render_json,
    run_lint,
)
from repro.engine.executor import ThreadExecutor

SWALLOW = (
    "def probe(fn):\n"
    "    try:\n"
    "        fn()\n"
    "    except Exception:\n"
    "        pass\n"
)

CLEAN = "def double(x):\n    return 2 * x\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(SWALLOW)
    (pkg / "good.py").write_text(CLEAN)
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "skipme.py").write_text(SWALLOW)
    return tmp_path


def lint_tree(tree, **kwargs):
    kwargs.setdefault("root", str(tree))
    return run_lint([str(tree / "pkg")], **kwargs)


class TestDiscovery:
    def test_discovers_py_files_and_skips_excluded_dirs(self, tree):
        found = discover_files([str(tree / "pkg")])
        names = [path.rsplit("/", 1)[-1] for path in found]
        assert names == ["bad.py", "good.py"]

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            discover_files(["definitely/not/here"])


class TestRunLint:
    def test_finds_the_swallow(self, tree):
        result = lint_tree(tree)
        assert [f.rule_id for f in result.fresh_findings] == ["R3"]
        assert result.fresh_findings[0].file == "pkg/bad.py"
        assert result.worst_fresh_severity() is Severity.ERROR
        assert result.fails(Severity.WARNING)
        assert result.fails(Severity.ERROR)
        assert not result.fails(None)

    def test_rule_subset(self, tree):
        result = lint_tree(tree, rules=["R4"])
        assert result.findings == []

    def test_syntax_error_becomes_r0_finding(self, tree):
        (tree / "pkg" / "broken.py").write_text("def oops(:\n")
        result = lint_tree(tree)
        by_file = {f.file: f for f in result.findings}
        broken = by_file["pkg/broken.py"]
        assert broken.rule_id == "R0"
        assert broken.severity is Severity.ERROR

    def test_thread_backend_matches_serial(self, tree):
        serial = lint_tree(tree, executor="serial")
        threaded = lint_tree(tree, executor=ThreadExecutor(max_workers=4))
        assert serial.findings == threaded.findings

    def test_executor_spec_string(self, tree):
        result = lint_tree(tree, executor="threads:2")
        assert [f.rule_id for f in result.findings] == ["R3"]


class TestCache:
    def test_second_run_is_all_cache_hits(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        first = lint_tree(tree, cache_path=cache)
        assert (first.analyzed_count, first.cache_hit_count) == (2, 0)
        second = lint_tree(tree, cache_path=cache)
        assert (second.analyzed_count, second.cache_hit_count) == (0, 2)
        assert first.findings == second.findings

    def test_edit_invalidates_only_that_file(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        lint_tree(tree, cache_path=cache)
        (tree / "pkg" / "good.py").write_text(CLEAN + "\n# touched\n")
        rerun = lint_tree(tree, cache_path=cache)
        assert (rerun.analyzed_count, rerun.cache_hit_count) == (1, 1)

    def test_corrupt_cache_is_cold_not_fatal(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        result = lint_tree(tree, cache_path=str(cache))
        assert result.analyzed_count == 2

    def test_rule_set_change_invalidates(self, tree, tmp_path):
        cache = str(tmp_path / "cache.json")
        lint_tree(tree, cache_path=cache)
        rerun = lint_tree(tree, cache_path=cache, rules=["R3"])
        assert rerun.cache_hit_count == 0


class TestBaseline:
    def test_round_trip_marks_findings(self, tree, tmp_path):
        result = lint_tree(tree)
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings).save(str(baseline_path))
        rerun = lint_tree(tree, baseline_path=str(baseline_path))
        assert rerun.fresh_findings == []
        assert len(rerun.findings) == 1
        assert rerun.findings[0].baselined
        assert not rerun.fails(Severity.INFO)

    def test_budget_is_per_occurrence(self, tree, tmp_path):
        result = lint_tree(tree)
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings).save(str(baseline_path))
        # A SECOND occurrence of the grandfathered violation in the
        # same file must still fail the gate.
        (tree / "pkg" / "bad.py").write_text(SWALLOW + "\n\n" + SWALLOW)
        rerun = lint_tree(tree, baseline_path=str(baseline_path))
        assert len(rerun.findings) == 2
        assert len(rerun.fresh_findings) == 1

    def test_missing_baseline_file_is_empty(self, tree, tmp_path):
        result = lint_tree(
            tree, baseline_path=str(tmp_path / "nonexistent.json")
        )
        assert len(result.fresh_findings) == 1

    def test_unreadable_baseline_raises(self, tree, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("nope")
        with pytest.raises(LintError):
            lint_tree(tree, baseline_path=str(bad))


class TestCrossFileFinalize:
    def test_r7_reconciles_across_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "stages.py").write_text(
            "def run(timer):\n"
            "    with timer.stage('parse'):\n"
            "        pass\n"
        )
        (pkg / "chaos.py").write_text(
            "def inject(monkeypatch):\n"
            "    monkeypatch.setenv('REPRO_FAULTS', 'ghost:0:raise')\n"
        )
        result = run_lint([str(pkg)], root=str(tmp_path))
        r7 = [f for f in result.findings if f.rule_id == "R7"]
        assert len(r7) == 1
        assert r7[0].file == "pkg/chaos.py"
        assert "'ghost'" in r7[0].message

    def test_finalize_findings_respect_suppressions(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "stages.py").write_text(
            "def run(timer):\n"
            "    with timer.stage('parse'):\n"
            "        pass\n"
        )
        (pkg / "chaos.py").write_text(
            "# repro-lint: disable-file=R7\n"
            "def inject(monkeypatch):\n"
            "    monkeypatch.setenv('REPRO_FAULTS', 'ghost:0:raise')\n"
        )
        result = run_lint([str(pkg)], root=str(tmp_path))
        assert [f for f in result.findings if f.rule_id == "R7"] == []


class TestJsonReport:
    def test_shape(self, tree):
        result = lint_tree(tree)
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files_checked"] == 2
        assert payload["summary"]["fresh"] == 1
        assert payload["summary"]["by_rule"] == {"R3": 1}
        assert {rule["id"] for rule in payload["rules"]} >= {"R1", "R7"}
        (finding,) = payload["findings"]
        restored = Finding.from_dict(finding)
        assert restored.rule_id == "R3"
        assert restored.fingerprint == finding["fingerprint"]
