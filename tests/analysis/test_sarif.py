"""SARIF 2.1.0 emission: shape, validation, fingerprint round-trip."""

import json

import pytest

from repro.analysis import (
    Baseline,
    render_json,
    result_fingerprints,
    run_lint,
    sarif_report,
    validate_sarif,
)

SWALLOW = (
    "def probe(fn):\n"
    "    try:\n"
    "        fn()\n"
    "    except Exception:\n"
    "        pass\n"
)


@pytest.fixture
def result(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(SWALLOW)
    (pkg / "worse.py").write_text(SWALLOW + "\n\nX = {1, 2}\n")
    return run_lint([str(pkg)], root=str(tmp_path), cache_path=None)


class TestEmission:
    def test_log_validates_and_round_trips_json(self, result):
        report = sarif_report(result.findings, result.rules, tool_version="2")
        assert validate_sarif(report) == []
        # json round trip: the log is plain data.
        restored = json.loads(json.dumps(report))
        assert validate_sarif(restored) == []
        assert restored["version"] == "2.1.0"
        driver = restored["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {rule["id"] for rule in driver["rules"]} >= {"R1", "R8"}

    def test_fingerprints_match_the_json_report(self, result):
        # Acceptance: the SARIF artifact and the JSON report identify
        # findings by the same stable fingerprints.
        report = sarif_report(result.findings, result.rules)
        json_report = json.loads(render_json(result))
        assert result_fingerprints(report) == [
            finding["fingerprint"] for finding in json_report["findings"]
        ]
        assert len(result_fingerprints(report)) == len(result.findings) > 0

    def test_locations_are_one_based(self, result):
        report = sarif_report(result.findings, result.rules)
        for entry in report["runs"][0]["results"]:
            region = entry["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_baselined_findings_become_suppressions(self, result, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings).save(str(baseline_path))
        rerun = run_lint(
            [str(tmp_path / "pkg")],
            root=str(tmp_path),
            cache_path=None,
            baseline_path=str(baseline_path),
        )
        report = sarif_report(rerun.findings, rerun.rules)
        assert validate_sarif(report) == []
        entries = report["runs"][0]["results"]
        assert entries, "expected baselined findings to still be reported"
        assert all(
            entry["suppressions"] == [{"kind": "external"}]
            for entry in entries
        )


class TestValidator:
    def base(self):
        return {
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {"driver": {"name": "repro-lint", "rules": []}},
                    "results": [],
                }
            ],
        }

    def test_accepts_minimal_log(self):
        assert validate_sarif(self.base()) == []

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["$: log must be a JSON object"]

    def test_rejects_wrong_version_and_empty_runs(self):
        problems = validate_sarif({"version": "2.0.0", "runs": []})
        assert any("$.version" in p for p in problems)
        assert any("$.runs" in p for p in problems)

    def test_rejects_missing_driver_name(self):
        log = self.base()
        del log["runs"][0]["tool"]["driver"]["name"]
        assert any(
            "tool.driver.name" in p for p in validate_sarif(log)
        )

    def test_rejects_bad_result_shapes(self):
        log = self.base()
        log["runs"][0]["results"] = [
            {"level": "fatal"},
            {
                "message": {"text": "ok"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": "a.py"},
                            "region": {"startLine": 0},
                        }
                    }
                ],
            },
            {"message": {"text": "ok"}, "suppressions": [{"kind": "maybe"}]},
        ]
        problems = validate_sarif(log)
        assert any("results[0].message" in p for p in problems)
        assert any("results[0].level" in p for p in problems)
        assert any("startLine" in p and "1-based" in p for p in problems)
        assert any("suppressions[0]" in p for p in problems)

    def test_rejects_duplicate_rule_ids(self):
        log = self.base()
        log["runs"][0]["tool"]["driver"]["rules"] = [
            {"id": "R1"},
            {"id": "R1"},
        ]
        assert any("duplicate" in p for p in validate_sarif(log))
