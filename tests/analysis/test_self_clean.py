"""The repo must pass its own linter (modulo the checked-in baseline).

This is the in-suite twin of the CI gate: every R1–R10 law the
analyzer enforces holds over ``src/`` and ``tests/``, with
pre-existing waivers carried by ``lint-baseline.json``.
"""

from pathlib import Path

from repro.analysis import Severity, all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean_modulo_baseline():
    result = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
        root=str(REPO_ROOT),
        cache_path=None,
        baseline_path=str(REPO_ROOT / "lint-baseline.json"),
    )
    fresh = result.fresh_findings
    assert fresh == [], "\n".join(f.describe() for f in fresh)
    assert not result.fails(Severity.WARNING)


def test_every_documented_rule_is_registered():
    assert [rule.rule_id for rule in all_rules()] == [
        "R1",
        "R2",
        "R3",
        "R4",
        "R5",
        "R6",
        "R7",
        "R8",
        "R9",
        "R10",
    ]
    for rule in all_rules():
        assert rule.law, rule.rule_id
        assert rule.name, rule.rule_id
