"""Tests for JSON Schema export / import."""

import json

import pytest
from hypothesis import given

from repro.discovery import Jxplain, KReduce, LReduce
from repro.errors import UnsupportedSchemaError
from repro.schema.entropy import schema_entropy
from repro.schema.jsonschema import DIALECT, from_json_schema, to_json_schema
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from tests.conftest import json_values


class TestExport:
    def test_primitive(self):
        assert to_json_schema(NUMBER_S, root=False) == {"type": "number"}

    def test_root_carries_dialect(self):
        document = to_json_schema(NUMBER_S)
        assert document["$schema"] == DIALECT

    def test_never_is_false(self):
        assert to_json_schema(NEVER, root=False) is False

    def test_object_tuple_closed(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        document = to_json_schema(schema, root=False)
        assert document["additionalProperties"] is False
        assert document["required"] == ["a"]
        assert set(document["properties"]) == {"a", "b"}

    def test_array_tuple_uses_prefix_items(self):
        schema = ArrayTuple((NUMBER_S, STRING_S), min_length=1)
        document = to_json_schema(schema, root=False)
        assert document["minItems"] == 1
        assert document["maxItems"] == 2
        assert document["items"] is False

    def test_collections_carry_stats(self):
        document = to_json_schema(
            ObjectCollection(NUMBER_S, ("b", "a")), root=False
        )
        assert document["x-repro"]["domain"] == ["a", "b"]
        document = to_json_schema(ArrayCollection(STRING_S, 7), root=False)
        assert document["x-repro"]["maxLengthSeen"] == 7

    def test_export_is_json_serializable(self):
        schema = union(
            ObjectTuple({"a": NUMBER_S}),
            ArrayCollection(STRING_S, 3),
        )
        json.dumps(to_json_schema(schema))


class TestRoundTrip:
    def _roundtrip(self, schema):
        return from_json_schema(to_json_schema(schema))

    def test_simple_nodes(self):
        for schema in (
            NUMBER_S,
            NEVER,
            ObjectTuple({"a": NUMBER_S}, {"b": STRING_S}),
            ArrayTuple((NUMBER_S,), min_length=0),
            ArrayCollection(STRING_S, 5),
            ObjectCollection(NUMBER_S, ("x",)),
            union(NUMBER_S, STRING_S),
        ):
            assert self._roundtrip(schema) == schema

    @given(json_values(max_leaves=10))
    def test_discovered_schemas_roundtrip(self, value):
        for discoverer in (LReduce(), KReduce(), Jxplain()):
            schema = discoverer.discover([value])
            restored = self._roundtrip(schema)
            assert restored == schema
            assert schema_entropy(restored) == schema_entropy(schema)


class TestImportValidation:
    def test_unknown_fragment_rejected(self):
        with pytest.raises(UnsupportedSchemaError):
            from_json_schema({"type": "integer"})
        with pytest.raises(UnsupportedSchemaError):
            from_json_schema("nonsense")

    def test_required_without_property_rejected(self):
        with pytest.raises(UnsupportedSchemaError):
            from_json_schema(
                {
                    "type": "object",
                    "properties": {},
                    "required": ["ghost"],
                    "additionalProperties": False,
                }
            )

    def test_array_without_items_rejected(self):
        with pytest.raises(UnsupportedSchemaError):
            from_json_schema({"type": "array"})
