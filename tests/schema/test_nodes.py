"""Tests for the schema grammar and admission semantics."""

import pytest
from hypothesis import given

from repro.errors import SchemaConstructionError
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    BOOLEAN_S,
    NEVER,
    NULL_S,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    Union,
    entity_count,
    exact_schema,
    iter_branches,
    top_level_entity_count,
    union,
)
from tests.conftest import json_values


class TestPrimitiveSchema:
    def test_admits_matching_kind_only(self):
        assert NUMBER_S.admits_value(3)
        assert NUMBER_S.admits_value(3.5)
        assert not NUMBER_S.admits_value(True)
        assert not NUMBER_S.admits_value("3")
        assert NULL_S.admits_value(None)
        assert BOOLEAN_S.admits_value(False)

    def test_rejects_complex(self):
        assert not STRING_S.admits_value([])
        assert not STRING_S.admits_value({})


class TestNever:
    def test_admits_nothing(self):
        for value in (None, 0, "x", [], {}):
            assert not NEVER.admits_value(value)

    def test_is_singleton(self):
        from repro.schema.nodes import _Never

        assert _Never() is NEVER


class TestObjectTuple:
    def test_required_and_optional(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        assert schema.admits_value({"a": 1})
        assert schema.admits_value({"a": 1, "b": "x"})
        assert not schema.admits_value({"b": "x"})  # missing required
        assert not schema.admits_value({"a": 1, "z": 2})  # unexpected
        assert not schema.admits_value({"a": "wrong"})  # bad type
        assert not schema.admits_value([1])  # wrong kind

    def test_required_optional_overlap_rejected(self):
        with pytest.raises(SchemaConstructionError):
            ObjectTuple({"a": NUMBER_S}, {"a": STRING_S})

    def test_non_schema_field_rejected(self):
        with pytest.raises(SchemaConstructionError):
            ObjectTuple({"a": 42})

    def test_field_schema_lookup(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        assert schema.field_schema("a") is NUMBER_S
        assert schema.field_schema("b") is STRING_S
        with pytest.raises(KeyError):
            schema.field_schema("zz")

    def test_empty_tuple_admits_only_empty_object(self):
        schema = ObjectTuple()
        assert schema.admits_value({})
        assert not schema.admits_value({"a": 1})

    def test_equality_ignores_construction_order(self):
        first = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        second = ObjectTuple({"b": STRING_S, "a": NUMBER_S})
        assert first == second
        assert hash(first) == hash(second)


class TestArrayTuple:
    def test_fixed_length(self):
        schema = ArrayTuple((NUMBER_S, NUMBER_S))
        assert schema.admits_value([1.0, 2.0])
        assert not schema.admits_value([1.0])
        assert not schema.admits_value([1.0, 2.0, 3.0])
        assert not schema.admits_value([1.0, "x"])

    def test_optional_suffix(self):
        schema = ArrayTuple((NUMBER_S, STRING_S), min_length=1)
        assert schema.admits_value([1])
        assert schema.admits_value([1, "x"])
        assert not schema.admits_value([])

    def test_min_length_bounds_validated(self):
        with pytest.raises(SchemaConstructionError):
            ArrayTuple((NUMBER_S,), min_length=5)
        with pytest.raises(SchemaConstructionError):
            ArrayTuple((NUMBER_S,), min_length=-1)

    def test_empty_tuple_admits_empty_array(self):
        schema = ArrayTuple(())
        assert schema.admits_value([])
        assert not schema.admits_value([1])


class TestCollections:
    def test_array_collection_any_length(self):
        schema = ArrayCollection(STRING_S, max_length_seen=2)
        assert schema.admits_value([])
        assert schema.admits_value(["a"])
        # Admission ignores the observed max length — that is the point
        # of calling it a collection.
        assert schema.admits_value(["a"] * 10)
        assert not schema.admits_value(["a", 1])

    def test_object_collection_any_keys(self):
        schema = ObjectCollection(NUMBER_S, domain=("x", "y"))
        assert schema.admits_value({})
        assert schema.admits_value({"anything": 1, "else": 2})
        assert not schema.admits_value({"x": "not a number"})

    def test_collection_stats_participate_in_equality(self):
        assert ArrayCollection(STRING_S, 2) != ArrayCollection(STRING_S, 3)
        assert ObjectCollection(NUMBER_S, ("a",)) != ObjectCollection(
            NUMBER_S, ("b",)
        )

    def test_negative_max_length_rejected(self):
        with pytest.raises(SchemaConstructionError):
            ArrayCollection(STRING_S, -1)


class TestUnion:
    def test_normalization_flattens_and_dedups(self):
        schema = union(NUMBER_S, union(NUMBER_S, STRING_S), NEVER)
        assert isinstance(schema, Union)
        assert set(schema.branches) == {NUMBER_S, STRING_S}

    def test_empty_union_is_never(self):
        assert union() is NEVER
        assert union(NEVER, NEVER) is NEVER

    def test_singleton_union_collapses(self):
        assert union(NUMBER_S) is NUMBER_S

    def test_admission_is_any_branch(self):
        schema = union(NUMBER_S, STRING_S)
        assert schema.admits_value(1)
        assert schema.admits_value("x")
        assert not schema.admits_value(True)

    def test_raw_constructor_validates(self):
        with pytest.raises(SchemaConstructionError):
            Union([NUMBER_S])
        with pytest.raises(SchemaConstructionError):
            Union([NUMBER_S, union(STRING_S, BOOLEAN_S)])

    def test_branch_order_irrelevant_for_equality(self):
        assert union(NUMBER_S, STRING_S) == union(STRING_S, NUMBER_S)

    def test_iter_branches(self):
        assert list(iter_branches(NEVER)) == []
        assert list(iter_branches(NUMBER_S)) == [NUMBER_S]
        assert set(iter_branches(union(NUMBER_S, STRING_S))) == {
            NUMBER_S,
            STRING_S,
        }


class TestExactSchema:
    @given(json_values())
    def test_exact_schema_admits_its_value(self, value):
        schema = exact_schema(type_of(value))
        assert schema.admits_value(value)

    def test_exact_schema_is_tight(self):
        schema = exact_schema(type_of({"a": [1, 2]}))
        assert not schema.admits_value({"a": [1]})
        assert not schema.admits_value({"a": [1, 2], "b": 3})
        assert not schema.admits_value({})


class TestEntityCount:
    def test_counts_tuples_not_collections(self):
        schema = union(
            ObjectTuple({"a": NUMBER_S}),
            ObjectCollection(ObjectTuple({"b": STRING_S})),
            ArrayCollection(ArrayTuple((NUMBER_S,))),
        )
        assert entity_count(schema) == 3
        assert top_level_entity_count(schema) == 1

    def test_walk_covers_all_nodes(self):
        schema = ObjectTuple({"a": union(NUMBER_S, STRING_S)})
        names = [type(node).__name__ for node in schema.walk()]
        assert names.count("ObjectTuple") == 1
        assert names.count("Union") == 1


class TestPickling:
    """Schema nodes ship to worker processes inside entity-merge tasks,
    so every node kind must survive a pickle round trip — including the
    interned/singleton ones, whose default reduce re-enters __new__."""

    def roundtrip(self, schema):
        import pickle

        restored = pickle.loads(pickle.dumps(schema))
        assert restored == schema
        return restored

    def test_primitive_singletons_stay_interned(self):
        for singleton in (BOOLEAN_S, NUMBER_S, STRING_S, NULL_S):
            assert self.roundtrip(singleton) is singleton

    def test_never_stays_singleton(self):
        assert self.roundtrip(NEVER) is NEVER

    def test_composite_nodes_roundtrip(self):
        schemas = [
            ObjectTuple({"a": NUMBER_S}, optional={"b": STRING_S}),
            ArrayTuple((NUMBER_S, STRING_S), min_length=1),
            ArrayCollection(STRING_S, max_length_seen=4),
            ObjectCollection(ObjectTuple({"x": NUMBER_S}), domain=("k",)),
            union(NUMBER_S, STRING_S),
        ]
        for schema in schemas:
            restored = self.roundtrip(schema)
            assert hash(restored) == hash(schema)

    def test_nested_schema_roundtrips(self):
        schema = ObjectTuple(
            {
                "users": ArrayCollection(
                    ObjectTuple({"id": NUMBER_S}, optional={"tag": STRING_S})
                ),
            },
            optional={"meta": union(NULL_S, ObjectTuple({"page": NUMBER_S}))},
        )
        restored = self.roundtrip(schema)
        assert restored.admits_value(
            {"users": [{"id": 1, "tag": "a"}], "meta": None}
        )
