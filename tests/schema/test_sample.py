"""Tests for schema value sampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import Jxplain, KReduce, LReduce
from repro.errors import UnsupportedSchemaError
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from repro.schema.sample import (
    estimate_false_positive_rate,
    sample_value,
    sample_values,
)
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=6)


class TestSampleValue:
    def test_never_unsampleable(self):
        with pytest.raises(UnsupportedSchemaError):
            sample_value(NEVER)

    def test_primitive_kinds(self):
        rng = random.Random(0)
        assert isinstance(sample_value(NUMBER_S, rng), (int, float))
        assert isinstance(sample_value(STRING_S, rng), str)

    def test_empty_collections_from_never_elements(self):
        assert sample_value(ArrayCollection(NEVER), random.Random(0)) == []
        assert sample_value(ObjectCollection(NEVER), random.Random(0)) == {}

    def test_deterministic_under_seed(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        assert sample_values(schema, 10, seed=4) == sample_values(
            schema, 10, seed=4
        )

    def test_optional_fields_vary(self):
        schema = ObjectTuple({}, {"b": STRING_S})
        drawn = sample_values(schema, 50, seed=1)
        presence = {"b" in value for value in drawn}
        assert presence == {True, False}

    def test_array_tuple_lengths_within_bounds(self):
        schema = ArrayTuple((NUMBER_S, NUMBER_S, NUMBER_S), min_length=1)
        for value in sample_values(schema, 30, seed=2):
            assert 1 <= len(value) <= 3

    def test_collection_uses_domain_and_invents(self):
        schema = ObjectCollection(NUMBER_S, domain=("known_a", "known_b"))
        keys = set()
        for value in sample_values(schema, 100, seed=3):
            keys |= set(value)
        assert keys & {"known_a", "known_b"}
        assert any(key.startswith("key_") for key in keys)

    @given(value_lists, st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_admitted(self, values, seed):
        """The sampler's core contract, for every discoverer's output."""
        for discoverer in (LReduce(), KReduce(), Jxplain()):
            schema = discoverer.discover(values)
            rng = random.Random(seed)
            for _ in range(3):
                assert schema.admits_value(sample_value(schema, rng))


class TestFalsePositiveRate:
    def test_self_oracle_is_zero(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        rate = estimate_false_positive_rate(
            schema, schema.admits_value, samples=50
        )
        assert rate == 0.0

    def test_wide_schema_vs_narrow_oracle(self):
        """A permissive schema shows a high false-positive rate against
        the precise oracle — the sampling view of claim (i)."""
        narrow = union(
            ObjectTuple({"ts": NUMBER_S, "user": STRING_S}),
            ObjectTuple({"ts": NUMBER_S, "files": STRING_S}),
        )
        wide = ObjectTuple(
            {"ts": NUMBER_S}, {"user": STRING_S, "files": STRING_S}
        )
        rate = estimate_false_positive_rate(
            wide, narrow.admits_value, samples=400, seed=1
        )
        # Records with both or neither optional field are rejected by
        # the narrow oracle: with presence 0.5 each, about half of the
        # samples are invalid.
        assert 0.3 < rate < 0.7

    def test_kreduce_worse_than_jxplain(self, login_serve_stream):
        """Direct precision comparison on the Figure 1 stream."""
        oracle = LReduce().discover(login_serve_stream * 3)

        def accepts(value):
            # Ground truth: exact entity shapes, ignoring the concrete
            # geo/file counts by re-deriving from stream structure.
            keys = set(value) if isinstance(value, dict) else None
            return keys in (
                {"ts", "event", "user"},
                {"ts", "event", "files"},
            )

        jx_rate = estimate_false_positive_rate(
            Jxplain().discover(login_serve_stream), accepts, samples=300
        )
        kr_rate = estimate_false_positive_rate(
            KReduce().discover(login_serve_stream), accepts, samples=300
        )
        assert jx_rate <= kr_rate

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            estimate_false_positive_rate(NUMBER_S, lambda v: True, samples=0)
