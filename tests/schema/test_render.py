"""Tests for schema rendering."""

from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from repro.schema.render import render, summary


class TestRender:
    def test_primitives(self):
        assert render(NUMBER_S) == "number"
        assert render(STRING_S) == "string"

    def test_never(self):
        assert render(NEVER) == "never"

    def test_object_tuple_compact(self):
        schema = ObjectTuple({"b": NUMBER_S}, {"a": STRING_S})
        assert render(schema, compact=True) == "{a?: string, b: number}"

    def test_empty_object(self):
        assert render(ObjectTuple(), compact=True) == "{}"

    def test_array_tuple(self):
        schema = ArrayTuple((NUMBER_S, NUMBER_S))
        assert render(schema, compact=True) == "[number, number]"

    def test_array_tuple_optional_suffix_marked(self):
        schema = ArrayTuple((NUMBER_S, STRING_S), min_length=1)
        assert render(schema, compact=True) == "[number, string?]"

    def test_collections(self):
        assert render(ArrayCollection(STRING_S), compact=True) == "[string]*"
        assert (
            render(ObjectCollection(NUMBER_S), compact=True)
            == "{*: number}*"
        )

    def test_union_pipes(self):
        schema = union(NUMBER_S, STRING_S)
        assert render(schema, compact=True) in (
            "number | string",
            "string | number",
        )

    def test_pretty_print_multiline(self):
        schema = ObjectTuple({"a": ObjectTuple({"b": NUMBER_S})})
        text = render(schema)
        assert "\n" in text
        assert "  " in text

    def test_repr_uses_render(self):
        assert repr(NUMBER_S) == "number"

    def test_summary(self):
        schema = ObjectTuple({"a": NUMBER_S})
        text = summary(schema)
        assert "nodes=2" in text
        assert "entities=1" in text
