"""Tests for schema entropy (§7.2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schema.entropy import (
    LOG2_ZERO,
    log2_add,
    log2_geometric_sum,
    log2_one_plus,
    log2_sum,
    log2_type_count,
    schema_entropy,
)
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)

finite_logs = st.floats(min_value=-100.0, max_value=100.0)


class TestLogHelpers:
    @given(finite_logs, finite_logs)
    def test_log2_add_commutative(self, a, b):
        assert log2_add(a, b) == pytest.approx(log2_add(b, a))

    @given(finite_logs, finite_logs)
    def test_log2_add_correct(self, a, b):
        expected = math.log2(2.0**a + 2.0**b)
        assert log2_add(a, b) == pytest.approx(expected, rel=1e-9)

    def test_log2_add_zero_identity(self):
        assert log2_add(LOG2_ZERO, 5.0) == 5.0
        assert log2_add(5.0, LOG2_ZERO) == 5.0

    def test_log2_sum(self):
        # 2 + 2 + 4 = 8
        assert log2_sum([1.0, 1.0, 2.0]) == pytest.approx(3.0)

    def test_log2_one_plus(self):
        assert log2_one_plus(0.0) == pytest.approx(1.0)  # 1 + 1 = 2
        assert log2_one_plus(LOG2_ZERO) == pytest.approx(0.0)  # 1 + 0 = 1

    def test_geometric_sum_small(self):
        # c = 2, L = 3: 1 + 2 + 4 + 8 = 15.
        assert log2_geometric_sum(1.0, 3) == pytest.approx(math.log2(15))

    def test_geometric_sum_c_equals_one(self):
        assert log2_geometric_sum(0.0, 9) == pytest.approx(math.log2(10))

    def test_geometric_sum_huge(self):
        # The closed form must stay finite and close to L * log2(c).
        result = log2_geometric_sum(10.0, 1000)
        assert result == pytest.approx(10_000.0, abs=1.0)

    def test_geometric_sum_degenerate(self):
        assert log2_geometric_sum(1.0, 0) == 0.0
        assert log2_geometric_sum(1.0, -1) == LOG2_ZERO
        assert log2_geometric_sum(LOG2_ZERO, 5) == 0.0


class TestTypeCount:
    def test_primitive_is_one_type(self):
        assert log2_type_count(NUMBER_S) == 0.0

    def test_never_is_zero_types(self):
        assert log2_type_count(NEVER) == LOG2_ZERO

    def test_union_adds(self):
        assert log2_type_count(union(NUMBER_S, STRING_S)) == pytest.approx(1.0)

    def test_required_fields_multiply(self):
        schema = ObjectTuple(
            {"a": union(NUMBER_S, STRING_S), "b": union(NUMBER_S, STRING_S)}
        )
        assert log2_type_count(schema) == pytest.approx(2.0)

    def test_optional_field_binary_decision(self):
        schema = ObjectTuple({}, {"a": NUMBER_S})
        # present-with-number or absent: 2 types.
        assert log2_type_count(schema) == pytest.approx(1.0)

    def test_example1_kreduce_blowup(self):
        """The Figure 1 K-reduce schema admits 4 types (user? x files?)."""
        schema = ObjectTuple(
            {"ts": NUMBER_S, "event": STRING_S},
            {
                "user": ObjectTuple({"name": STRING_S}),
                "files": ArrayCollection(STRING_S, 0),
            },
        )
        assert log2_type_count(schema) == pytest.approx(2.0)

    def test_array_tuple_fixed(self):
        schema = ArrayTuple((union(NUMBER_S, STRING_S), NUMBER_S))
        assert log2_type_count(schema) == pytest.approx(1.0)

    def test_array_tuple_optional_suffix(self):
        schema = ArrayTuple((NUMBER_S, NUMBER_S), min_length=1)
        # lengths 1 and 2, one type each: 2 types.
        assert log2_type_count(schema) == pytest.approx(1.0)

    def test_array_tuple_with_never_position(self):
        schema = ArrayTuple((NUMBER_S, NEVER), min_length=1)
        # Only length-1 arrays are realizable.
        assert log2_type_count(schema) == pytest.approx(0.0)

    def test_object_collection_domain_bits(self):
        schema = ObjectCollection(NUMBER_S, domain=[f"k{i}" for i in range(7)])
        # 7 presence bits, shared value schema contributes 0 bits.
        assert log2_type_count(schema) == pytest.approx(7.0)

    def test_object_collection_matches_optional_fields(self):
        """A collection of primitives scores exactly like the same keys
        as optional primitive fields — why Table 2's Pharma rows are
        identical across extractors."""
        keys = [f"drug{i}" for i in range(20)]
        collection = ObjectCollection(NUMBER_S, domain=keys)
        tuple_schema = ObjectTuple({}, {key: NUMBER_S for key in keys})
        assert log2_type_count(collection) == pytest.approx(
            log2_type_count(tuple_schema)
        )

    def test_array_collection_length_choice(self):
        schema = ArrayCollection(NUMBER_S, max_length_seen=3)
        assert log2_type_count(schema) == pytest.approx(math.log2(4))

    def test_empty_collection_admits_one_type(self):
        assert log2_type_count(ArrayCollection(NEVER, 0)) == 0.0
        assert log2_type_count(ObjectCollection(NEVER, ())) == 0.0

    def test_literal_collections_compound(self):
        inner = ObjectCollection(NUMBER_S, domain=[f"i{i}" for i in range(10)])
        outer = ObjectCollection(inner, domain=[f"o{i}" for i in range(10)])
        decision = log2_type_count(outer)
        literal = log2_type_count(outer, literal_collections=True)
        assert decision == pytest.approx(20.0)
        assert literal > 90.0  # 10 keys x ~10 bits each

    def test_schema_entropy_alias(self):
        schema = ObjectTuple({}, {"a": NUMBER_S})
        assert schema_entropy(schema) == log2_type_count(schema)


class TestMonotonicity:
    def test_adding_optional_field_increases_entropy(self):
        base = ObjectTuple({"a": NUMBER_S})
        wider = ObjectTuple({"a": NUMBER_S}, {"b": NUMBER_S})
        assert log2_type_count(wider) > log2_type_count(base)

    def test_union_increases_entropy(self):
        base = ObjectTuple({"a": NUMBER_S})
        other = ObjectTuple({"b": STRING_S})
        assert log2_type_count(union(base, other)) > log2_type_count(base)

    def test_entity_split_reduces_entropy(self):
        """The core of claim (i): two separate entities admit fewer
        types than one entity with the union of fields optional."""
        merged = ObjectTuple(
            {"ts": NUMBER_S},
            {"user": NUMBER_S, "files": STRING_S},
        )
        split = union(
            ObjectTuple({"ts": NUMBER_S, "user": NUMBER_S}),
            ObjectTuple({"ts": NUMBER_S, "files": STRING_S}),
        )
        assert log2_type_count(split) < log2_type_count(merged)
