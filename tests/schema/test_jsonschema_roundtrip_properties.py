"""Property tests: JSON Schema export/import is lossless.

Schemas are generated directly as grammar trees (not via discovery),
so the strategy reaches corners discovery rarely produces — NEVER
nested in containers, empty tuples, collections of collections, deep
unions.  For every generated schema ``s``:

* ``from_json_schema(to_json_schema(s)) == s`` (structural identity);
* the round-tripped schema admits exactly what ``s`` admits, probed
  both with arbitrary JSON values and with values sampled *from* the
  schema (positive cases, which random probing alone would miss);
* a second export is byte-identical (the document is canonical).
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedSchemaError
from repro.schema import from_json_schema, to_json_schema
from repro.schema.nodes import (
    NEVER,
    PRIMITIVE_SCHEMAS,
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    union,
)
from repro.schema.sample import sample_value
from tests.conftest import json_keys, json_values

leaf_schemas = st.sampled_from(tuple(PRIMITIVE_SCHEMAS.values()) + (NEVER,))

domain_keys = st.lists(
    st.sampled_from(["id", "name", "url", "tag"]), max_size=3, unique=True
)


def _object_tuple(drawn):
    required, optional = drawn
    optional = {k: v for k, v in optional.items() if k not in required}
    return ObjectTuple(required, optional)


def _array_tuple(elements):
    return st.integers(min_value=0, max_value=len(elements)).map(
        lambda min_length: ArrayTuple(tuple(elements), min_length)
    )


def _compound(children):
    return st.one_of(
        st.tuples(
            st.dictionaries(json_keys, children, max_size=3),
            st.dictionaries(json_keys, children, max_size=3),
        ).map(_object_tuple),
        st.lists(children, max_size=3).flatmap(_array_tuple),
        st.tuples(children, st.integers(min_value=0, max_value=6)).map(
            lambda t: ArrayCollection(t[0], t[1])
        ),
        st.tuples(children, domain_keys).map(
            lambda t: ObjectCollection(t[0], t[1])
        ),
        st.lists(children, min_size=1, max_size=3).map(
            lambda branches: union(*branches)
        ),
    )


schema_trees = st.recursive(leaf_schemas, _compound, max_leaves=12)


@given(schema=schema_trees)
@settings(max_examples=150, deadline=None)
def test_round_trip_is_structural_identity(schema):
    document = to_json_schema(schema)
    # The document is plain JSON (serializable as-is).
    text = json.dumps(document, sort_keys=True)
    revived = from_json_schema(document)
    assert revived == schema
    # Export is canonical: re-exporting the revived schema yields the
    # same document bytes.
    assert json.dumps(to_json_schema(revived), sort_keys=True) == text


@given(schema=schema_trees, probes=st.lists(json_values(max_leaves=8), max_size=5))
@settings(max_examples=100, deadline=None)
def test_round_trip_admits_exactly_the_same_values(schema, probes):
    revived = from_json_schema(to_json_schema(schema))
    # Positive probes: values sampled from the schema itself must stay
    # admitted after the round trip.  (Unsatisfiable schemas — NEVER
    # somewhere mandatory — have nothing to sample.)
    rng = random.Random(7)
    for _ in range(3):
        try:
            value = sample_value(schema, rng)
        except UnsupportedSchemaError:
            break
        assert schema.admits_value(value)
        assert revived.admits_value(value)
    # Arbitrary probes: agreement in both directions.
    for value in probes:
        assert revived.admits_value(value) == schema.admits_value(value)


@given(schema=schema_trees)
@settings(max_examples=100, deadline=None)
def test_entropy_survives_the_round_trip(schema):
    """Collection statistics ride along, so entropy is preserved."""
    from repro.schema import schema_entropy

    revived = from_json_schema(to_json_schema(schema))
    assert schema_entropy(revived) == schema_entropy(schema)
