"""Tests for Markdown documentation generation."""

from repro.datasets import make_dataset
from repro.discovery import Jxplain
from repro.schema.docgen import schema_to_markdown
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)


class TestSchemaToMarkdown:
    def test_title_and_description(self):
        schema = ObjectTuple({"a": NUMBER_S})
        text = schema_to_markdown(
            schema, title="My API", description="What the feed looks like."
        )
        assert text.startswith("# My API")
        assert "What the feed looks like." in text

    def test_field_table(self):
        schema = ObjectTuple({"id": NUMBER_S}, {"note": STRING_S})
        text = schema_to_markdown(schema)
        assert "| `id` | yes | `number` |" in text
        assert "| `note` | no | `string` |" in text

    def test_entities_get_sections(self):
        schema = union(
            ObjectTuple({"ts": NUMBER_S, "user": STRING_S}),
            ObjectTuple({"ts": NUMBER_S, "files": STRING_S}),
        )
        text = schema_to_markdown(schema)
        assert "2 top-level alternative(s)" in text
        assert text.count("## Entity") == 2

    def test_collections_described(self):
        schema = ObjectTuple(
            {
                "counts": ObjectCollection(
                    NUMBER_S, domain=("DRUG A", "DRUG B")
                ),
                "tags": ArrayCollection(STRING_S, 4),
            }
        )
        text = schema_to_markdown(schema)
        assert "2 distinct keys observed" in text
        assert "any key is accepted" in text
        assert "`DRUG A`" in text
        assert "up to 4 elements observed" in text

    def test_tuple_arrays_inline(self):
        schema = ObjectTuple({"geo": ArrayTuple((NUMBER_S, NUMBER_S))})
        text = schema_to_markdown(schema)
        assert "tuple [`number`, `number`]" in text

    def test_nested_objects_get_subsections(self):
        schema = ObjectTuple(
            {"user": ObjectTuple({"name": STRING_S, "age": NUMBER_S})}
        )
        text = schema_to_markdown(schema)
        assert "### `user`" in text
        assert "| `name` | yes | `string` |" in text

    def test_raw_schema_appendix(self):
        schema = ObjectTuple({"a": NUMBER_S})
        text = schema_to_markdown(schema)
        assert "Raw schema:" in text
        assert "```" in text

    def test_end_to_end_on_github(self):
        """The §6 motivation: regenerate the event documentation page."""
        records = make_dataset("github").generate(600, seed=2)
        schema = Jxplain().discover(records)
        text = schema_to_markdown(schema, title="GitHub events")
        assert text.count("## Entity") >= 5
        assert "`payload`" in text
        assert "| `actor` |" in text
