"""Round-trip soundness of admission (§2 Definition 1).

Two properties over hypothesis-generated schemas and values:

* **Sampling soundness** — every value :func:`sample_value` draws from
  a schema is admitted by that schema (the sampler inverts the
  validator);
* **Admission agreement** — for any value ``v``,
  ``schema.admits_value(v)`` and ``schema.admits_type(type_of(v))``
  give the same answer: admission is a property of the value's *type*,
  with no subclass shortcutting the type-level definition.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    Union,
    union,
)
from repro.schema.sample import sample_value, sample_values

from tests.conftest import json_values


field_names = st.text(alphabet="abcdef_", min_size=1, max_size=5)

primitive_schemas = st.sampled_from(
    [PRIMITIVE_SCHEMAS[kind] for kind in (
        Kind.NULL, Kind.BOOLEAN, Kind.NUMBER, Kind.STRING,
    )]
)


def _object_tuple(children):
    return st.tuples(
        st.dictionaries(field_names, children, max_size=3),
        st.dictionaries(field_names, children, max_size=3),
    ).map(
        lambda pair: ObjectTuple(
            pair[0],
            {k: v for k, v in pair[1].items() if k not in pair[0]},
        )
    )


def _array_tuple(children):
    return st.tuples(
        st.lists(children, max_size=3),
        st.integers(min_value=0, max_value=3),
    ).map(
        lambda pair: ArrayTuple(
            pair[0], min_length=min(pair[1], len(pair[0]))
        )
    )


def _array_collection(children):
    return st.tuples(
        children, st.integers(min_value=0, max_value=4)
    ).map(lambda pair: ArrayCollection(pair[0], max_length_seen=pair[1]))


def _object_collection(children):
    return st.tuples(
        children,
        st.frozensets(field_names, max_size=4),
    ).map(lambda pair: ObjectCollection(pair[0], domain=pair[1]))


def _union(children):
    return st.lists(children, min_size=1, max_size=3).map(
        lambda branches: union(*branches)
    )


#: Arbitrary non-empty schemas (NEVER is excluded: nothing to sample).
schemas = st.recursive(
    primitive_schemas,
    lambda children: st.one_of(
        _object_tuple(children),
        _array_tuple(children),
        _array_collection(children),
        _object_collection(children),
        _union(children),
    ),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(schema=schemas, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_every_sampled_value_is_admitted(schema, seed):
    value = sample_value(schema, random.Random(seed))
    assert schema.admits_value(value), (schema, value)


@settings(max_examples=50, deadline=None)
@given(schema=schemas, seed=st.integers(min_value=0, max_value=10_000))
def test_sample_values_batch_is_admitted_and_deterministic(schema, seed):
    batch = sample_values(schema, 5, seed=seed)
    again = sample_values(schema, 5, seed=seed)
    assert batch == again
    assert all(schema.admits_value(value) for value in batch)


@settings(max_examples=150, deadline=None)
@given(schema=schemas, value=json_values(max_leaves=10))
def test_admits_value_agrees_with_admits_type(schema, value):
    assert schema.admits_value(value) == schema.admits_type(type_of(value))


@settings(max_examples=75, deadline=None)
@given(schema=schemas, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_union_branches_admit_their_own_samples(schema, seed):
    """A union admits whatever any branch admits — sampled evidence."""
    wrapped = union(schema, PRIMITIVE_SCHEMAS[Kind.NULL])
    value = sample_value(schema, random.Random(seed))
    assert wrapped.admits_value(value)
    if isinstance(wrapped, Union):
        assert wrapped.admits_value(None)
