"""Tests for schema subsumption and union simplification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import Jxplain, KReduce, LReduce
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from repro.schema.subsume import simplify_union, subsumes
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=6)


class TestSubsumes:
    def test_reflexive(self):
        schema = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        assert subsumes(schema, schema)

    def test_never_bottom(self):
        assert subsumes(NUMBER_S, NEVER)
        assert not subsumes(NEVER, NUMBER_S)
        assert subsumes(NEVER, NEVER)

    def test_optional_widens(self):
        narrow = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        wide = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        assert subsumes(wide, narrow)
        assert not subsumes(narrow, wide)

    def test_extra_optional_field_widens(self):
        narrow = ObjectTuple({"a": NUMBER_S})
        wide = ObjectTuple({"a": NUMBER_S}, {"extra": STRING_S})
        assert subsumes(wide, narrow)
        assert not subsumes(narrow, wide)

    def test_union_covers_branches(self):
        wide = union(NUMBER_S, STRING_S)
        assert subsumes(wide, NUMBER_S)
        assert subsumes(wide, union(STRING_S, NUMBER_S))
        assert not subsumes(NUMBER_S, wide)

    def test_collection_subsumes_tuple(self):
        collection = ObjectCollection(NUMBER_S)
        tuple_schema = ObjectTuple({"a": NUMBER_S}, {"b": NUMBER_S})
        assert subsumes(collection, tuple_schema)
        assert not subsumes(tuple_schema, collection)

    def test_array_collection_subsumes_array_tuple(self):
        collection = ArrayCollection(NUMBER_S)
        tuple_schema = ArrayTuple((NUMBER_S, NUMBER_S), min_length=1)
        assert subsumes(collection, tuple_schema)

    def test_array_tuple_bounds(self):
        wide = ArrayTuple((NUMBER_S, NUMBER_S), min_length=0)
        narrow = ArrayTuple((NUMBER_S,), min_length=1)
        assert subsumes(wide, narrow)
        assert not subsumes(narrow, wide)

    def test_mixed_kinds_never_subsume(self):
        assert not subsumes(NUMBER_S, STRING_S)
        assert not subsumes(ObjectTuple({}), ArrayTuple(()))

    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_kreduce_subsumes_lreduce(self, values):
        """K-reduce generalizes naive discovery, provably per input."""
        types = [type_of(v) for v in values]
        assert subsumes(
            KReduce().merge_types(types), LReduce().merge_types(types)
        )

    @given(value_lists, json_values(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_soundness(self, values, probe):
        """If subsumes(a, b) then every value b admits, a admits."""
        types = [type_of(v) for v in values]
        narrow = LReduce().merge_types(types)
        wide = KReduce().merge_types(types)
        if subsumes(wide, narrow) and narrow.admits_value(probe):
            assert wide.admits_value(probe)


class TestSimplifyUnion:
    def test_drops_subsumed_branch(self):
        wide = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        narrow = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        simplified = simplify_union(union(wide, narrow))
        assert simplified == wide

    def test_keeps_incomparable_branches(self):
        first = ObjectTuple({"a": NUMBER_S})
        second = ObjectTuple({"x": STRING_S})
        schema = union(first, second)
        assert simplify_union(schema) == schema

    def test_recurses_into_fields(self):
        inner = union(
            ObjectTuple({"a": NUMBER_S}, {"b": STRING_S}),
            ObjectTuple({"a": NUMBER_S, "b": STRING_S}),
        )
        outer = ObjectTuple({"payload": inner})
        simplified = simplify_union(outer)
        assert simplified.field_schema("payload") == ObjectTuple(
            {"a": NUMBER_S}, {"b": STRING_S}
        )

    def test_primitives_untouched(self):
        assert simplify_union(NUMBER_S) is NUMBER_S
        assert simplify_union(NEVER) is NEVER

    @given(value_lists, json_values(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_simplification_preserves_admission(self, values, probe):
        types = [type_of(v) for v in values]
        schema = union(
            LReduce().merge_types(types), KReduce().merge_types(types)
        )
        simplified = simplify_union(schema)
        # Sound subsumption: the simplified schema admits exactly what
        # the original did on any probe.
        assert simplified.admits_value(probe) == schema.admits_value(probe)
        for value in values:
            assert simplified.admits_value(value)

    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_simplification_never_grows(self, values):
        types = [type_of(v) for v in values]
        schema = union(
            LReduce().merge_types(types),
            KReduce().merge_types(types),
            Jxplain().merge_types(types),
        )
        assert simplify_union(schema).node_count() <= schema.node_count()
