"""Tests for the diff / docs / coref CLI subcommands."""

import json

import pytest

from repro.cli import main
from repro.io.jsonlines import write_jsonlines


def _discover_to(tmp_path, records, name):
    data = tmp_path / f"{name}.jsonl"
    write_jsonlines(data, records)
    schema = tmp_path / f"{name}.schema.json"
    assert (
        main(
            [
                "discover",
                str(data),
                "--format",
                "json",
                "--output",
                str(schema),
            ]
        )
        == 0
    )
    return schema


class TestDiffCommand:
    def test_identical(self, tmp_path, capsys):
        records = [{"a": 1, "b": "x"}] * 5
        old = _discover_to(tmp_path, records, "old")
        new = _discover_to(tmp_path, records, "new")
        assert main(["diff", str(old), str(new)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_breaking_change_exits_nonzero(self, tmp_path, capsys):
        old = _discover_to(tmp_path, [{"a": 1}] * 5, "old")
        new = _discover_to(tmp_path, [{"a": 1, "b": 2}] * 5, "new")
        assert main(["diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "$.b" in out
        assert "!" in out

    def test_breaking_only_filter(self, tmp_path, capsys):
        # Only the collection domain grows: informational, exit 0.
        old = _discover_to(
            tmp_path,
            [{"m": {f"k{i}": 1.0, f"k{i+1}": 2.0}} for i in range(0, 40, 2)],
            "old",
        )
        new = _discover_to(
            tmp_path,
            [{"m": {f"k{i}": 1.0, f"k{i+1}": 2.0}} for i in range(0, 60, 2)],
            "new",
        )
        code = main(["diff", str(old), str(new), "--breaking-only"])
        assert code == 0


class TestDocsCommand:
    def test_docs_to_stdout(self, tmp_path, capsys):
        schema = _discover_to(tmp_path, [{"id": 1, "name": "x"}] * 5, "s")
        assert main(["docs", str(schema), "--title", "My feed"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# My feed")
        assert "| `id` |" in out

    def test_docs_to_file(self, tmp_path):
        schema = _discover_to(tmp_path, [{"id": 1}] * 5, "s")
        target = tmp_path / "docs.md"
        assert main(["docs", str(schema), "--output", str(target)]) == 0
        assert target.read_text().startswith("# Discovered schema")


class TestCorefCommand:
    def test_reports_repeats(self, tmp_path, capsys):
        user = {"id": 1, "name": "x", "handle": "y"}
        records = [{"author": user, "reviewer": user, "n": i} for i in range(5)]
        schema = _discover_to(tmp_path, records, "s")
        assert main(["coref", str(schema)]) == 0
        out = capsys.readouterr().out
        assert "co-reference" in out
        assert "$.author" in out and "$.reviewer" in out

    def test_no_repeats(self, tmp_path, capsys):
        schema = _discover_to(tmp_path, [{"a": 1}] * 5, "s")
        assert main(["coref", str(schema)]) == 0
        assert "no co-references" in capsys.readouterr().out


class TestDiscoverConfigFlags:
    def test_strategy_and_threshold(self, tmp_path, capsys):
        from repro.datasets import make_dataset

        data = tmp_path / "events.jsonl"
        write_jsonlines(data, make_dataset("figure1").generate(60, seed=1))
        assert (
            main(["discover", str(data), "--strategy", "single"]) == 0
        )
        out = capsys.readouterr().out
        # SINGLE strategy: one entity with optional fields.
        assert "user?" in out and "files?" in out

    def test_no_collections_flag(self, tmp_path, capsys):
        records = [
            {"m": {f"k{i}": 1.0, f"k{i+1}": 2.0}} for i in range(0, 60, 2)
        ]
        data = tmp_path / "maps.jsonl"
        write_jsonlines(data, records)
        assert main(["discover", str(data)]) == 0
        assert "{*: number}*" in capsys.readouterr().out
        assert main(["discover", str(data), "--no-collections"]) == 0
        assert "{*: number}*" not in capsys.readouterr().out

    def test_similarity_depth_flag(self, tmp_path, capsys):
        records = [
            {
                f"P{i}": [{"snak": {"dv": {"value": "s" if i % 2 else {"q": 1}}}}],
                f"P{i + 40}": [{"snak": {"dv": {"value": "t"}}}],
            }
            for i in range(30)
        ]
        data = tmp_path / "claims.jsonl"
        write_jsonlines(data, records)
        assert main(
            ["discover", str(data), "--similarity-depth", "3"]
        ) == 0
        assert "{*:" in capsys.readouterr().out

    def test_flags_rejected_for_non_configurable(self, tmp_path, capsys):
        data = tmp_path / "x.jsonl"
        write_jsonlines(data, [{"a": 1}])
        code = main(
            ["discover", str(data), "--algorithm", "l-reduce",
             "--threshold", "2.0"]
        )
        assert code == 2
