"""The fused reader against the classic one, and the raw-byte offset
contract both readers now share.

The pinned fixture here is deliberately non-ASCII: byte offsets must
come from the raw buffer, so a line of multi-byte UTF-8 ahead of a bad
record shifts the recorded offset by its *byte* length, not its
character length.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.engine.dataset import LocalDataset
from repro.errors import DatasetError
from repro.io.fastpath import (
    absorb_jsonlines_fused,
    ingest_jsonlines_fused,
    read_jsonlines_fused,
)
from repro.io.jsonlines import (
    IngestReport,
    ingest_jsonlines,
    load_jsonlines,
)
from repro.jsontypes.tokenizer import ShapeCache
from repro.jsontypes.types import type_of

#: Three lines: 2-byte-per-char Greek, a 4-byte emoji, then garbage.
#: The garbage line's byte offset is the sum of the *byte* lengths of
#: the lines before it — 21 + 14 = 35 — which a character-counting
#: reader would misreport as 15 + 11 = 26.
NON_ASCII_LINES = [
    '{"λ": "αβγδε"}',  # 14 chars, 21 bytes (with newline)
    '{"e": "🌍"}',  # 10 chars, 14 bytes (with newline)
    "garbage",
]
GARBAGE_OFFSET = 21 + 14


def _write(path, lines, *, compress=False, bom=False):
    payload = b"".join(line.encode("utf-8") + b"\n" for line in lines)
    if bom:
        payload = b"\xef\xbb\xbf" + payload
    if compress:
        path.write_bytes(gzip.compress(payload))
    else:
        path.write_bytes(payload)
    return path


@pytest.mark.parametrize("compress", [False, True], ids=["plain", "gzip"])
def test_multibyte_offsets_are_raw_byte_exact_in_both_modes(
    tmp_path, compress
):
    suffix = ".jsonl.gz" if compress else ".jsonl"
    path = _write(
        tmp_path / f"multibyte{suffix}", NON_ASCII_LINES, compress=compress
    )
    records, classic = ingest_jsonlines(path, on_bad_record="collect")
    types, fused = ingest_jsonlines_fused(path, on_bad_record="collect")
    for report in (classic, fused):
        assert report.record_count == 2
        assert report.bad_line_numbers() == [3]
        assert report.bad_records[0].byte_offset == GARBAGE_OFFSET
        assert report.bad_records[0].payload == "garbage"
    assert [type_of(record) for record in records] == types


def test_fused_matches_classic_on_bom_and_blank_lines(tmp_path):
    path = _write(
        tmp_path / "bom.jsonl",
        ['{"a": 1}', "", "   ", '{"a": 2}'],
        bom=True,
    )
    records, classic = ingest_jsonlines(path, on_bad_record="skip")
    types, fused = ingest_jsonlines_fused(path, on_bad_record="skip")
    assert classic == fused
    assert fused.record_count == 2
    assert [type_of(record) for record in records] == types


def test_fused_raise_policy_matches_classic_message(tmp_path):
    path = _write(tmp_path / "bad.jsonl", ['{"a": 1}', "{nope"])
    with pytest.raises(DatasetError) as classic_error:
        list(ingest_jsonlines(path, on_bad_record="raise")[0])
    with pytest.raises(DatasetError) as fused_error:
        list(read_jsonlines_fused(path, on_bad_record="raise"))
    assert str(fused_error.value) == str(classic_error.value)


def test_fused_hits_do_not_reparse_and_preserve_identity(tmp_path):
    lines = ['{"a": %d, "b": "%s"}' % (i, "x" * (i % 3)) for i in range(50)]
    path = _write(tmp_path / "repeat.jsonl", lines)
    cache = ShapeCache()
    types, report = ingest_jsonlines_fused(path, shape_cache=cache)
    assert report.record_count == 50
    # One shape → one miss, everything else served from the cache.
    assert cache.misses == 1
    assert cache.hits == 49
    assert len(set(map(id, types))) == 1


def test_shape_cache_can_be_shared_across_files(tmp_path):
    first = _write(tmp_path / "one.jsonl", ['{"k": 1}'] * 3)
    second = _write(tmp_path / "two.jsonl", ['{"k": 2}'] * 3)
    cache = ShapeCache()
    ingest_jsonlines_fused(first, shape_cache=cache)
    ingest_jsonlines_fused(second, shape_cache=cache)
    assert cache.misses == 1
    assert cache.hits == 5


def test_absorb_fused_streams_into_state(tmp_path):
    from repro.discovery.state import state_for_algorithm

    path = _write(tmp_path / "s.jsonl", ['{"a": 1}', '{"a": 1, "b": "x"}'])
    fused_state = state_for_algorithm("l-reduce", None)
    report = absorb_jsonlines_fused(fused_state, path)
    assert isinstance(report, IngestReport)
    assert report.record_count == 2
    classic_state = state_for_algorithm("l-reduce", None)
    classic_state.absorb_many(ingest_jsonlines(path)[0])
    assert fused_state.to_bytes() == classic_state.to_bytes()


def test_load_jsonlines_ingest_modes(tmp_path):
    path = _write(tmp_path / "load.jsonl", ['{"a": 1}'])
    assert load_jsonlines(path) == [{"a": 1}]
    assert load_jsonlines(path, ingest="fused") == [type_of({"a": 1})]
    with pytest.raises(DatasetError, match="unknown ingest mode"):
        load_jsonlines(path, ingest="warp")


def test_dataset_from_jsonlines_fused(tmp_path):
    path = _write(tmp_path / "ds.jsonl", ['{"a": 1}', '{"b": [1]}'] * 4)
    dataset = LocalDataset.from_jsonlines(path, ingest="fused")
    assert dataset.ingest_report.record_count == 8
    assert sorted(map(repr, set(dataset.collect()))) == sorted(
        map(repr, {type_of({"a": 1}), type_of({"b": [1]})})
    )
    with pytest.raises(DatasetError, match="unknown ingest mode"):
        LocalDataset.from_jsonlines(path, ingest="warp")


def test_adaptive_partitioning_is_opt_in(tmp_path):
    from repro.engine.dataset import adaptive_partitions

    path = _write(tmp_path / "tiny.jsonl", ['{"a": 1}'] * 6)
    # Explicit default: unchanged layout.
    assert LocalDataset.from_jsonlines(path).num_partitions == 4
    # Adaptive: six records collapse to one partition.
    assert LocalDataset.from_jsonlines(path, None).num_partitions == 1
    assert adaptive_partitions(0, 8) == 1
    assert adaptive_partitions(100, 8) == 1
    assert adaptive_partitions(4096, 8) == 4
    assert adaptive_partitions(1_000_000, 8) == 8


def test_fused_counters_flush_once_per_file(tmp_path):
    from repro.engine.instrument import counters

    path = _write(tmp_path / "c.jsonl", ['{"a": 1}'] * 5)
    before = counters.snapshot().get("ingest.fused_records", 0)
    list(read_jsonlines_fused(path))
    after = counters.snapshot()
    assert after["ingest.fused_records"] - before == 5
    assert after.get("ingest.shape_hits", 0) >= 4
    assert after.get("ingest.bytes", 0) > 0
