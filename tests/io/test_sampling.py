"""Tests for sampling and the paper's experimental protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.sampling import (
    PAPER_TEST_FRACTION,
    PAPER_TRAINING_FRACTIONS,
    PAPER_TRIALS,
    paper_protocol,
    train_test_split,
    trial_samples,
    uniform_sample,
)


class TestUniformSample:
    def test_size(self):
        records = list(range(1000))
        assert len(uniform_sample(records, 0.1, seed=1)) == 100

    def test_minimum_one_record(self):
        assert len(uniform_sample([1, 2, 3], 0.01)) == 1

    def test_zero_fraction_empty(self):
        assert uniform_sample([1, 2, 3], 0.0) == []
        assert uniform_sample([], 0.5) == []

    def test_order_preserved(self):
        records = list(range(100))
        sample = uniform_sample(records, 0.3, seed=5)
        assert sample == sorted(sample)

    def test_deterministic(self):
        records = list(range(100))
        assert uniform_sample(records, 0.5, seed=7) == uniform_sample(
            records, 0.5, seed=7
        )
        assert uniform_sample(records, 0.5, seed=7) != uniform_sample(
            records, 0.5, seed=8
        )

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            uniform_sample([1], 1.5)
        with pytest.raises(ValueError):
            uniform_sample([1], -0.1)

    @given(st.lists(st.integers(), max_size=50), st.floats(0, 1))
    def test_sample_is_subsequence(self, records, fraction):
        sample = uniform_sample(records, fraction, seed=0)
        iterator = iter(records)
        for item in sample:
            assert item in iterator  # consumes: enforces order + membership


class TestTrainTestSplit:
    def test_partition(self):
        records = list(range(100))
        split = train_test_split(records, 0.1, seed=0)
        assert split.train_size == 90
        assert split.test_size == 10
        assert sorted(split.train + split.test) == records

    def test_no_overlap(self):
        records = list(range(200))
        split = train_test_split(records, 0.25, seed=3)
        assert not set(split.train) & set(split.test)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            train_test_split([1], 1.0)


class TestProtocol:
    def test_constants_match_paper(self):
        assert PAPER_TRAINING_FRACTIONS == (0.01, 0.10, 0.50, 0.90)
        assert PAPER_TEST_FRACTION == 0.10
        assert PAPER_TRIALS == 5

    def test_trial_samples_independent(self):
        records = list(range(500))
        samples = trial_samples(records, 0.1, trials=3, base_seed=1)
        assert len(samples) == 3
        assert len({tuple(s) for s in samples}) == 3

    def test_paper_protocol_shapes(self):
        records = list(range(1000))
        sample, test = paper_protocol(records, fraction=0.1, trial=0, seed=2)
        assert len(test) == 100
        assert len(sample) == 90  # 10% of the 900-record training pool
        assert not set(sample) & set(test)
