"""Tests for JSON-lines IO."""

import pytest

from repro.errors import DatasetError
from repro.io.jsonlines import load_jsonlines, read_jsonlines, write_jsonlines


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        records = [{"a": 1}, {"b": [True, None]}, "bare string", 42]
        path = tmp_path / "data.jsonl"
        count = write_jsonlines(path, records)
        assert count == 4
        assert load_jsonlines(path) == records

    def test_gzip_round_trip(self, tmp_path):
        records = [{"a": i} for i in range(50)]
        path = tmp_path / "data.jsonl.gz"
        write_jsonlines(path, records)
        assert load_jsonlines(path) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n\n   \n{"a": 2}\n')
        assert load_jsonlines(path) == [{"a": 1}, {"a": 2}]

    def test_streaming_is_lazy(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonlines(path, [{"a": i} for i in range(10)])
        iterator = read_jsonlines(path)
        assert next(iterator) == {"a": 0}

    def test_parse_error_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(DatasetError, match=":2:"):
            load_jsonlines(path)

    def test_unicode_preserved(self, tmp_path):
        records = [{"naïve": "日本語", "emoji": "🎉"}]
        path = tmp_path / "unicode.jsonl"
        write_jsonlines(path, records)
        assert load_jsonlines(path) == records
