"""Tests for the Table 3 entity-accuracy metric."""

from repro.datasets import make_dataset
from repro.metrics.entity_accuracy import (
    evaluate_entity_detection,
    format_entity_table,
    ground_truth_path_sets,
    min_symmetric_differences,
    symmetric_difference,
)


def fs(*keys):
    return frozenset(keys)


class TestSymmetricDifference:
    def test_basic(self):
        assert symmetric_difference(fs("a", "b"), fs("b", "c")) == 2
        assert symmetric_difference(fs("a"), fs("a")) == 0

    def test_min_against_clusters(self):
        truth = {"e1": fs("a", "b"), "e2": fs("x")}
        clusters = [fs("a", "b"), fs("x", "y")]
        result = min_symmetric_differences(clusters, truth)
        assert result == {"e1": 0, "e2": 1}

    def test_no_clusters(self):
        truth = {"e1": fs("a", "b")}
        assert min_symmetric_differences([], truth) == {"e1": 2}


class TestGroundTruth:
    def test_union_per_label(self):
        features = [fs("a"), fs("a", "b"), fs("x")]
        labels = ["l1", "l1", "l2"]
        truth = ground_truth_path_sets(features, labels)
        assert truth == {"l1": fs("a", "b"), "l2": fs("x")}


class TestEvaluateEntityDetection:
    def test_yelp_merged_shape(self):
        """Table 3's shape on Yelp-Merged: Bimax-Merge near zero,
        K-reduce large, for every entity."""
        labeled = make_dataset("yelp-merged").generate_labeled(800, seed=4)
        results = {
            acc.method: acc
            for acc in evaluate_entity_detection(labeled)
        }
        assert set(results) == {"bimax-merge", "k-reduce", "k-means"}
        bimax = results["bimax-merge"]
        kreduce = results["k-reduce"]
        # Bimax-Merge reconstructs each entity essentially exactly.
        assert bimax.total <= 0.1 * kreduce.total
        # K-reduce's single fat cluster misses every individual entity.
        assert all(value > 0 for value in kreduce.per_entity.values())

    def test_kmeans_worse_than_bimax(self):
        labeled = make_dataset("yelp-merged").generate_labeled(800, seed=4)
        results = {
            acc.method: acc
            for acc in evaluate_entity_detection(labeled)
        }
        assert results["bimax-merge"].total <= results["k-means"].total

    def test_single_entity_dataset(self):
        labeled = make_dataset("yelp-photos").generate_labeled(100, seed=1)
        results = evaluate_entity_detection(labeled)
        bimax = next(a for a in results if a.method == "bimax-merge")
        assert bimax.per_entity == {"photos": 0}

    def test_format_table(self):
        labeled = make_dataset("yelp-merged").generate_labeled(300, seed=2)
        results = evaluate_entity_detection(labeled)
        text = format_entity_table(results, dataset="yelp-merged")
        assert "bimax-merge" in text
        assert "k-reduce" in text
        assert "total" in text
