"""Tests for the Table 4 conciseness metric."""

from repro.datasets import make_dataset
from repro.metrics.conciseness import (
    ConcisenessRow,
    count_entities,
    format_conciseness_table,
)


class TestCountEntities:
    def test_merge_never_exceeds_naive(self):
        for name in ("github", "yelp-merged", "yelp-business"):
            records = make_dataset(name).generate(600, seed=5)
            counts = count_entities(records)
            assert counts["bimax-merge"] <= counts["bimax-naive"]

    def test_yelp_merged_recovers_six_tables(self):
        records = make_dataset("yelp-merged").generate(900, seed=6)
        counts = count_entities(records)
        assert 6 <= counts["bimax-merge"] <= 9

    def test_single_clean_entity(self):
        records = make_dataset("yelp-photos").generate(200, seed=1)
        counts = count_entities(records)
        assert counts == {"l-reduce": 1, "bimax-naive": 1, "bimax-merge": 1}

    def test_pharma_collection_ablation(self):
        """The paper's Pharma row: nearly every record has a unique
        type, so L-reduce explodes; with collection detection the
        Bimax feature vectors collapse to a single entity, and without
        it they fragment (GreedyMerge coalesces some back)."""
        records = make_dataset("pharma").generate(150, seed=7)
        with_detection = count_entities(records, detect_collections=True)
        without_detection = count_entities(
            records, detect_collections=False
        )
        assert with_detection["l-reduce"] >= len(records) * 0.9
        assert with_detection["bimax-naive"] == 1
        assert with_detection["bimax-merge"] == 1
        assert without_detection["bimax-naive"] > 1
        assert (
            without_detection["bimax-merge"]
            <= without_detection["bimax-naive"]
        )

    def test_empty_object_stream(self):
        counts = count_entities([1, 2, 3])
        assert counts == {"l-reduce": 0, "bimax-naive": 0, "bimax-merge": 0}


class TestFormatting:
    def test_table_renders(self):
        row = ConcisenessRow(
            dataset="toy",
            l_reduce=[10, 12],
            bimax_naive=[3, 3],
            bimax_merge=[1, 1],
        )
        text = format_conciseness_table([row])
        assert "toy" in text
        assert "11.0" in text  # l-reduce mean

    def test_summary_handles_empty(self):
        row = ConcisenessRow(dataset="toy")
        summary = row.summary()
        assert summary["l_reduce_mean"] == 0.0
