"""Tests for the recall/entropy/runtime sweep harness."""

from repro.discovery import Jxplain, KReduce, LReduce
from repro.metrics.recall import (
    CellStats,
    format_sweep_table,
    measure_recall,
    run_sweep,
)
from repro.schema.nodes import NUMBER_S


class TestCellStats:
    def test_moments(self):
        stats = CellStats([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.max == 3.0
        assert stats.min == 1.0
        assert stats.std > 0

    def test_empty(self):
        stats = CellStats([])
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_single_value_no_std(self):
        assert CellStats([5.0]).std == 0.0


class TestMeasureRecall:
    def test_fraction(self):
        assert measure_recall(NUMBER_S, [1, "x", 2, "y"]) == 0.5
        assert measure_recall(NUMBER_S, []) == 1.0


class TestRunSweep:
    def _records(self):
        records = []
        for index in range(300):
            record = {"id": index, "kind": "a" if index % 2 else "b"}
            if index % 7 == 0:
                record["rare"] = True
            records.append(record)
        return records

    def test_sweep_grid_complete(self):
        sweep = run_sweep(
            "toy",
            self._records(),
            [KReduce(), Jxplain()],
            fractions=(0.1, 0.5),
            trials=2,
        )
        assert sweep.algorithms() == ["k-reduce", "bimax-merge"]
        assert sweep.fractions() == [0.1, 0.5]
        assert len(sweep.trials) == 2 * 2 * 2

    def test_recall_improves_with_sample_size(self):
        sweep = run_sweep(
            "toy",
            self._records(),
            [LReduce()],
            fractions=(0.01, 0.9),
            trials=3,
        )
        small = sweep.cell("l-reduce", 0.01, "recall").mean
        large = sweep.cell("l-reduce", 0.9, "recall").mean
        assert large >= small

    def test_entropy_and_runtime_recorded(self):
        sweep = run_sweep(
            "toy", self._records(), [KReduce()], fractions=(0.5,), trials=1
        )
        trial = sweep.trials[0]
        assert trial.runtime_ms > 0
        assert trial.entropy >= 0

    def test_schemas_kept_on_request(self):
        sweep = run_sweep(
            "toy",
            self._records(),
            [KReduce()],
            fractions=(0.5,),
            trials=1,
            keep_schemas=True,
        )
        assert sweep.trials[0].schema is not None

    def test_format_table(self):
        sweep = run_sweep(
            "toy",
            self._records(),
            [KReduce(), Jxplain()],
            fractions=(0.1,),
            trials=2,
        )
        table = format_sweep_table(sweep, "recall", include_max=True)
        lines = table.splitlines()
        assert "k-reduce:mean" in lines[0]
        assert "bimax-merge:max" in lines[0]
        assert len(lines) == 2  # header + one fraction row
        assert "10%" in lines[1]

    def test_deterministic_under_seed(self):
        first = run_sweep(
            "toy", self._records(), [KReduce()], fractions=(0.1,),
            trials=2, seed=5,
        )
        second = run_sweep(
            "toy", self._records(), [KReduce()], fractions=(0.1,),
            trials=2, seed=5,
        )
        assert [t.recall for t in first.trials] == [
            t.recall for t in second.trials
        ]
