"""Tests for the dataset generator helper utilities."""

import random

import pytest

from repro.datasets.base import (
    DatasetGenerator,
    hex_id,
    iso_timestamp,
    maybe,
    mixture,
    register_dataset,
    sentence,
    word,
)
from repro.errors import DatasetError


class TestHelpers:
    def test_word_deterministic(self):
        assert word(random.Random(1)) == word(random.Random(1))
        assert word(random.Random(1), 5) != word(random.Random(2), 5)

    def test_word_length(self):
        assert len(word(random.Random(0), 7)) == 7

    def test_sentence_word_count(self):
        text = sentence(random.Random(0), words=5)
        assert len(text.split()) == 5

    def test_hex_id_alphabet(self):
        token = hex_id(random.Random(0), 30)
        assert len(token) == 30
        assert set(token) <= set("0123456789abcdef")

    def test_iso_timestamp_shape(self):
        stamp = iso_timestamp(random.Random(0), year=2019)
        assert stamp.startswith("2019-")
        assert stamp.endswith("Z")
        assert len(stamp) == len("2019-01-01T00:00:00Z")

    def test_maybe_probabilities(self):
        rng = random.Random(0)
        hits = sum(1 for _ in range(1000) if maybe(rng, 0.3))
        assert 230 < hits < 370

    def test_mixture_respects_weights(self):
        rng = random.Random(0)
        weighted = (("common", 90.0), ("rare", 10.0))
        draws = [mixture(rng, weighted) for _ in range(1000)]
        assert draws.count("common") > 800
        assert draws.count("rare") > 30

    def test_mixture_single_option(self):
        assert mixture(random.Random(0), (("only", 1.0),)) == "only"


class TestGeneratorBase:
    def test_abstract_generate_labeled(self):
        with pytest.raises(NotImplementedError):
            DatasetGenerator().generate_labeled(1)

    def test_register_requires_name(self):
        @register_dataset
        class Custom(DatasetGenerator):
            name = "custom-test-only"
            entity_labels = ("x",)

            def generate_labeled(self, n, seed=0):
                return [("x", {"v": i}) for i in range(n)]

        from repro.datasets.base import make_dataset

        generator = make_dataset("custom-test-only")
        assert len(generator.generate(5)) == 5

    def test_check_n_guards(self):
        from repro.datasets import make_dataset

        with pytest.raises(DatasetError):
            make_dataset("figure1").generate_labeled(-1)
