"""Tests for the synthetic corpus generators."""

import json

import pytest

from repro.datasets import (
    DRUG_VOCABULARY_SIZE,
    FIGURE1_RECORDS,
    PAPER_DATASETS,
    dataset_names,
    make_dataset,
)
from repro.datasets.base import DatasetGenerator
from repro.errors import DatasetError


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        for name in PAPER_DATASETS:
            assert name in dataset_names()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset("nope")

    def test_invalid_count_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset("github").generate_labeled(0)


class TestDeterminism:
    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_seeded_generation_is_reproducible(self, name):
        generator = make_dataset(name)
        first = generator.generate(50, seed=11)
        second = generator.generate(50, seed=11)
        assert first == second
        different = generator.generate(50, seed=12)
        assert first != different

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_records_are_json_serializable(self, name):
        for record in make_dataset(name).generate(30, seed=1):
            json.dumps(record)

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_labels_are_declared(self, name):
        generator = make_dataset(name)
        labeled = generator.generate_labeled(60, seed=2)
        assert len(labeled) == 60
        for label, _ in labeled:
            assert label in generator.entity_labels

    def test_default_size_used(self):
        generator = make_dataset("figure1")
        assert len(generator.generate()) == generator.default_size


class TestStructuralFacts:
    def test_figure1_constant_records(self):
        assert FIGURE1_RECORDS[0]["event"] == "login"
        assert len(FIGURE1_RECORDS[0]["user"]["geo"]) == 2
        assert FIGURE1_RECORDS[1]["event"] == "serve"

    def test_github_shared_envelope(self):
        records = make_dataset("github").generate(100, seed=3)
        envelope = {"id", "type", "actor", "repo", "payload", "public",
                    "created_at"}
        for record in records:
            assert envelope <= set(record)
            assert set(record) - envelope <= {"org"}

    def test_github_delete_subset_of_create(self):
        labeled = make_dataset("github").generate_labeled(2000, seed=3)
        create_keys = set()
        delete_keys = set()
        for label, record in labeled:
            if label == "CreateEvent":
                create_keys |= set(record["payload"])
            elif label == "DeleteEvent":
                delete_keys |= set(record["payload"])
        assert delete_keys and delete_keys < create_keys

    def test_pharma_drug_domain(self):
        from repro.datasets.pharma import drug_vocabulary

        vocabulary = drug_vocabulary()
        assert len(vocabulary) == DRUG_VOCABULARY_SIZE
        assert len(set(vocabulary)) == DRUG_VOCABULARY_SIZE
        records = make_dataset("pharma").generate(50, seed=4)
        for record in records:
            drugs = record["cms_prescription_counts"]
            assert drugs
            assert set(drugs) <= set(vocabulary)

    def test_twitter_geo_pairs_fixed_length(self):
        records = make_dataset("twitter").generate(400, seed=5)
        saw_geo = False
        for record in records:
            coordinates = record.get("coordinates")
            if coordinates:
                saw_geo = True
                assert len(coordinates["coordinates"]) == 2
        assert saw_geo

    def test_twitter_contains_deletes_and_retweets(self):
        labeled = make_dataset("twitter").generate_labeled(500, seed=6)
        labels = {label for label, _ in labeled}
        assert labels == {"tweet", "delete"}
        assert any(
            "retweeted_status" in record
            for label, record in labeled
            if label == "tweet"
        )

    def test_twitter_recursion_bounded(self):
        records = make_dataset("twitter").generate(300, seed=7)

        def depth(record):
            nested = record.get("retweeted_status") or record.get(
                "quoted_status"
            )
            return 1 + depth(nested) if nested else 1

        assert max(depth(r) for r in records if "delete" not in r) <= 3

    def test_synapse_signatures_shape(self):
        records = make_dataset("synapse").generate(200, seed=8)
        for record in records:
            for server, keys in record["signatures"].items():
                assert isinstance(keys, dict)
                for key_id, signature in keys.items():
                    assert key_id.startswith("ed25519:")
                    assert isinstance(signature, str)

    def test_synapse_revision_drift(self):
        records = make_dataset("synapse").generate(1000, seed=9)
        early = records[:100]
        late = records[-100:]
        assert not any("auth_events" in r for r in early)
        assert any("auth_events" in r for r in late)

    def test_nyt_multimedia_mixes_entities(self):
        records = make_dataset("nyt").generate(300, seed=10)
        kinds = set()
        for record in records:
            for item in record["multimedia"]:
                kinds.add(item["type"])
        assert kinds == {"image", "slideshow", "video"}

    def test_wikidata_claims_keyed_by_property(self):
        records = make_dataset("wikidata").generate(30, seed=11)
        for record in records:
            assert record["claims"]
            for property_id, statements in record["claims"].items():
                assert property_id.startswith("P")
                for statement in statements:
                    assert statement["mainsnak"]["property"] == property_id

    def test_yelp_checkin_pivot_shape(self):
        records = make_dataset("yelp-checkin").generate(100, seed=12)
        days = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
        for record in records:
            for day, hours in record["time"].items():
                assert day in days
                for hour, count in hours.items():
                    assert 0 <= int(hour) < 24
                    assert count > 0

    def test_yelp_business_salon_soft_fd(self):
        records = make_dataset("yelp-business").generate(3000, seed=13)
        salons = [
            r for r in records if "Hair Salons" in r.get("categories", "")
        ]
        others = [
            r
            for r in records
            if "Hair Salons" not in r.get("categories", "")
        ]
        assert salons and others
        salon_rate = sum(
            1
            for r in salons
            if "ByAppointmentOnly" in r.get("attributes", {})
        ) / len(salons)
        other_rate = sum(
            1
            for r in others
            if "ByAppointmentOnly" in r.get("attributes", {})
        ) / len(others)
        assert salon_rate > 0.9
        assert other_rate < 0.02

    def test_yelp_photos_four_mandatory_fields(self):
        records = make_dataset("yelp-photos").generate(50, seed=14)
        for record in records:
            assert set(record) == {
                "photo_id", "business_id", "caption", "label",
            }

    def test_yelp_merged_mixture(self):
        labeled = make_dataset("yelp-merged").generate_labeled(1200, seed=15)
        labels = {label for label, _ in labeled}
        assert labels == {
            "business", "checkin", "photos", "review", "tip", "user",
        }
