"""Tests for the programmatic experiment runner."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    figure4_histogram,
    main,
    table3_entities,
    table4_conciseness,
)

#: A tiny scale keeping each runner test under a few seconds.
SCALE = 0.12


class TestRunners:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5", "figure4",
        }

    def test_table3_runs_and_reports(self):
        text = table3_entities(["yelp-merged"], scale=SCALE)
        assert "bimax-merge" in text
        assert "k-means" in text

    def test_table4_runs(self):
        text = table4_conciseness(["yelp-photos", "pharma"], scale=SCALE)
        assert "yelp-photos" in text
        assert "pharma" in text

    def test_figure4_histogram_shape(self):
        text = figure4_histogram(["pharma"], scale=SCALE)
        assert "histogram" in text
        assert "[4.0, inf)" in text

    def test_sweep_experiments_run(self):
        from repro.experiments import table1_recall, table2_entropy

        recall = table1_recall(["yelp-photos"], scale=SCALE)
        assert "k-reduce:mean" in recall
        entropy = table2_entropy(["yelp-photos"], scale=SCALE)
        assert "bimax-merge:mean" in entropy


class TestCli:
    def test_single_experiment_to_stdout(self, capsys):
        code = main(
            [
                "--experiment", "table4",
                "--datasets", "yelp-photos",
                "--scale", str(SCALE),
            ]
        )
        assert code == 0
        assert "yelp-photos" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(
            [
                "--experiment", "figure4",
                "--datasets", "pharma",
                "--scale", str(SCALE),
                "--output", str(target),
            ]
        )
        assert code == 0
        assert "histogram" in target.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "table99"])
