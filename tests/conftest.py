"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.datasets import FIGURE1_RECORDS


# ---------------------------------------------------------------------------
# Hypothesis profiles.
# ---------------------------------------------------------------------------

#: CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized (the example
#: sequence is a pure function of the test, so a red run reproduces
#: locally from nothing but the log) and with a bounded example count
#: so the process-backend jobs stay fast.  Per-test ``@settings``
#: example counts still apply where they are lower.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# ---------------------------------------------------------------------------
# Hypothesis strategies for JSON values and types.
# ---------------------------------------------------------------------------

#: Keys kept short and drawn from a small alphabet so that generated
#: objects collide on keys often enough to exercise merging.
json_keys = st.text(
    alphabet="abcdefgh_", min_size=1, max_size=6
)

json_primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)


def json_values(max_leaves: int = 20):
    """Arbitrary JSON values with bounded size."""
    return st.recursive(
        json_primitives,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(json_keys, children, max_size=4),
        ),
        max_leaves=max_leaves,
    )


def json_objects(max_leaves: int = 20):
    """Arbitrary JSON objects (dict at the top level)."""
    return st.dictionaries(json_keys, json_values(max_leaves), max_size=5)


key_sets = st.frozensets(
    st.sampled_from("abcdefghijkl"), min_size=0, max_size=8
)

key_set_lists = st.lists(key_sets, min_size=1, max_size=12)


# ---------------------------------------------------------------------------
# Record fixtures.
# ---------------------------------------------------------------------------


@pytest.fixture
def figure1_records():
    """The two records from Figure 1 of the paper."""
    return [dict(record) for record in FIGURE1_RECORDS]


@pytest.fixture
def login_serve_stream():
    """A deterministic stream shaped like Figure 1 (20 records)."""
    records = []
    for index in range(20):
        if index % 2 == 0:
            records.append(
                {
                    "ts": index,
                    "event": "login",
                    "user": {
                        "name": f"user{index}",
                        "geo": [1.0 * index, -2.0 * index],
                    },
                }
            )
        else:
            records.append(
                {
                    "ts": index,
                    "event": "serve",
                    "files": [f"f{j}.txt" for j in range(index % 4)],
                }
            )
    return records


@pytest.fixture
def collection_like_records():
    """Pharma-style records with a collection-like nested object."""
    drugs = [f"DRUG_{index}" for index in range(40)]
    records = []
    for index in range(30):
        chosen = {
            drugs[(index * 7 + offset) % len(drugs)]: offset + 1
            for offset in range(5)
        }
        records.append({"npi": index, "counts": chosen})
    return records
