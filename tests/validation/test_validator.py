"""Tests for record validation and rejection explanation."""

from repro.discovery import Jxplain, KReduce
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from repro.validation.validator import (
    explain_rejection,
    first_failures,
    recall_against,
    validate_records,
)


class TestValidateRecords:
    def test_counts(self, login_serve_stream):
        schema = Jxplain().discover(login_serve_stream)
        good = login_serve_stream
        bad = [{"ts": 1, "event": "x", "unknown": True}]
        report = validate_records(schema, good + bad)
        assert report.total == len(good) + 1
        assert report.valid_count == len(good)
        assert report.invalid_count == 1
        assert report.failure_indices() == [len(good)]
        assert 0 < report.recall < 1

    def test_empty_report(self):
        report = validate_records(NUMBER_S, [])
        assert report.recall == 1.0
        assert report.total == 0

    def test_explanations_attached_on_request(self):
        schema = ObjectTuple({"a": NUMBER_S})
        report = validate_records(schema, [{"b": 1}], explain=True)
        failure = report.failures()[0]
        assert failure.violations
        assert any(
            "missing required" in str(v) for v in failure.violations
        )


class TestExplainRejection:
    def test_missing_required(self):
        schema = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        violations = explain_rejection(schema, type_of({"a": 1}))
        assert len(violations) == 1
        assert "missing required field 'b'" in str(violations[0])

    def test_unexpected_field(self):
        schema = ObjectTuple({"a": NUMBER_S})
        violations = explain_rejection(schema, type_of({"a": 1, "z": 2}))
        assert "unexpected field 'z'" in str(violations[0])

    def test_wrong_primitive(self):
        schema = ObjectTuple({"a": NUMBER_S})
        violations = explain_rejection(schema, type_of({"a": "text"}))
        assert "expected number, found string" in str(violations[0])

    def test_nested_path_rendered(self):
        schema = ObjectTuple(
            {"user": ObjectTuple({"geo": ArrayTuple((NUMBER_S, NUMBER_S))})}
        )
        violations = explain_rejection(
            schema, type_of({"user": {"geo": [1.0]}})
        )
        assert any("$.user.geo" in str(v) for v in violations)
        assert any("too short" in str(v) for v in violations)

    def test_array_too_long(self):
        schema = ArrayTuple((NUMBER_S,))
        violations = explain_rejection(schema, type_of([1, 2]))
        assert any("too long" in str(v) for v in violations)

    def test_collection_element_violation(self):
        schema = ArrayCollection(NUMBER_S)
        violations = explain_rejection(schema, type_of([1, "bad"]))
        assert any("$[1]" in str(v) for v in violations)

    def test_object_collection_value_violation(self):
        schema = ObjectCollection(NUMBER_S)
        violations = explain_rejection(schema, type_of({"k": "bad"}))
        assert any("$.k" in str(v) for v in violations)

    def test_picks_closest_branch(self):
        schema = union(
            ObjectTuple({"a": NUMBER_S, "b": NUMBER_S}),
            ObjectTuple({"x": STRING_S}),
        )
        # One violation against the first branch, two against the
        # second: the explanation uses the first.
        violations = explain_rejection(schema, type_of({"a": 1}))
        assert len(violations) == 1
        assert "'b'" in str(violations[0])

    def test_never_schema(self):
        violations = explain_rejection(NEVER, type_of({}))
        assert "admits no records" in str(violations[0])

    def test_admitted_type_has_no_violations(self):
        schema = ObjectTuple({"a": NUMBER_S})
        assert explain_rejection(schema, type_of({"a": 1})) == []


class TestHelpers:
    def test_recall_against(self):
        schema = NUMBER_S
        types = [type_of(1), type_of("x"), type_of(2)]
        assert recall_against(schema, types) == 2 / 3
        assert recall_against(schema, []) == 1.0

    def test_first_failures_limit(self):
        schema = NUMBER_S
        records = ["a", "b", "c", "d"]
        failures = first_failures(schema, records, limit=2)
        assert [index for index, _ in failures] == [0, 1]

    def test_kreduce_explains_monitoring_use_case(
        self, login_serve_stream
    ):
        """The intro's scenario: a new event shape arrives and the
        validator pinpoints what changed."""
        schema = KReduce().discover(login_serve_stream)
        new_event = {"ts": 99, "event": "login", "user": {"name": 1}}
        violations = explain_rejection(schema, type_of(new_event))
        assert any("$.user.name" in str(v) for v in violations)
