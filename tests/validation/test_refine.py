"""Tests for the iterative refinement loop (§4.2)."""

import pytest

from repro.discovery import Jxplain, LReduce
from repro.errors import EmptyInputError
from repro.validation.refine import iterative_refinement


def rare_field_stream(n=200):
    """A stream where one optional field is rare (1 in 50)."""
    records = []
    for index in range(n):
        record = {"id": index, "kind": "event"}
        if index % 50 == 17:
            record["rare"] = True
        records.append(record)
    return records


class TestIterativeRefinement:
    def test_converges_on_homogeneous_data(self):
        records = [{"a": i} for i in range(100)]
        result = iterative_refinement(Jxplain(), records, seed=1)
        assert result.converged
        assert result.total_rounds == 1

    def test_mops_up_rare_fields(self):
        records = rare_field_stream()
        result = iterative_refinement(
            Jxplain(), records, initial_fraction=0.02, seed=3
        )
        assert result.converged
        # Every record validates against the final schema.
        for record in records:
            assert result.schema.admits_value(record)
        # The sample grew only by the failures, not the whole data.
        assert result.final_sample_size < len(records) // 2

    def test_round_diagnostics_monotone_sample(self):
        records = rare_field_stream()
        result = iterative_refinement(
            Jxplain(), records, initial_fraction=0.02, seed=3
        )
        sizes = [round_.sample_size for round_ in result.rounds]
        assert sizes == sorted(sizes)

    def test_max_rounds_respected(self):
        # L-reduce can never generalize, so the loop keeps finding
        # failures until the cap.
        records = [{"id": i, f"f{i}": i} for i in range(60)]
        result = iterative_refinement(
            LReduce(),
            records,
            initial_fraction=0.05,
            max_rounds=3,
            max_failures_per_round=5,
        )
        assert not result.converged
        assert result.total_rounds == 3

    def test_parameter_validation(self):
        with pytest.raises(EmptyInputError):
            iterative_refinement(Jxplain(), [])
        with pytest.raises(ValueError):
            iterative_refinement(Jxplain(), [{}], initial_fraction=0.0)
        with pytest.raises(ValueError):
            iterative_refinement(Jxplain(), [{}], max_rounds=0)

    def test_deterministic_under_seed(self):
        records = rare_field_stream()
        first = iterative_refinement(Jxplain(), records, seed=9)
        second = iterative_refinement(Jxplain(), records, seed=9)
        assert first.schema == second.schema
        assert [r.failures for r in first.rounds] == [
            r.failures for r in second.rounds
        ]
