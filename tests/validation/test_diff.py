"""Tests for structural schema diffing."""

from repro.datasets import make_dataset
from repro.discovery import Jxplain
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
    union,
)
from repro.validation.diff import ChangeKind, diff_schemas


class TestBasicChanges:
    def test_identical_schemas(self):
        schema = ObjectTuple({"a": NUMBER_S})
        diff = diff_schemas(schema, schema)
        assert diff.is_empty
        assert "identical" in diff.summary()

    def test_field_added(self):
        old = ObjectTuple({"a": NUMBER_S})
        new = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        diff = diff_schemas(old, new)
        assert len(diff.changes) == 1
        change = diff.changes[0]
        assert change.kind is ChangeKind.ADDED
        assert change.path == ("b",)
        assert change.breaking

    def test_field_removed(self):
        old = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        new = ObjectTuple({"a": NUMBER_S})
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.REMOVED

    def test_requiredness_changes(self):
        old = ObjectTuple({"a": NUMBER_S, "b": STRING_S})
        new = ObjectTuple({"a": NUMBER_S}, {"b": STRING_S})
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.REQUIRED_TO_OPTIONAL
        reverse = diff_schemas(new, old)
        assert reverse.changes[0].kind is ChangeKind.OPTIONAL_TO_REQUIRED

    def test_primitive_type_change(self):
        old = ObjectTuple({"a": NUMBER_S})
        new = ObjectTuple({"a": STRING_S})
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.TYPE_CHANGED
        assert "number -> string" in diff.changes[0].detail

    def test_reshape_tuple_to_collection(self):
        old = ObjectTuple({"x": ObjectTuple({"k1": NUMBER_S})})
        new = ObjectTuple({"x": ObjectCollection(NUMBER_S)})
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.RESHAPED
        assert diff.changes[0].breaking

    def test_array_bounds_changed(self):
        old = ArrayTuple((NUMBER_S, NUMBER_S))
        new = ArrayTuple((NUMBER_S, NUMBER_S, NUMBER_S), min_length=2)
        diff = diff_schemas(old, new)
        kinds = {change.kind for change in diff.changes}
        assert ChangeKind.BOUNDS_CHANGED in kinds
        assert ChangeKind.ADDED in kinds

    def test_collection_drift_is_informational(self):
        old = ObjectCollection(NUMBER_S, domain=("a",))
        new = ObjectCollection(NUMBER_S, domain=("a", "b"))
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.DOMAIN_GREW
        assert not diff.changes[0].breaking
        assert not diff.breaking_changes()

    def test_array_length_drift_informational(self):
        old = ArrayCollection(STRING_S, 3)
        new = ArrayCollection(STRING_S, 9)
        diff = diff_schemas(old, new)
        assert diff.changes[0].kind is ChangeKind.LENGTH_DRIFT
        assert not diff.changes[0].breaking


class TestUnionMatching:
    def test_new_entity_reported_once(self):
        login = ObjectTuple({"ts": NUMBER_S, "user": STRING_S})
        serve = ObjectTuple({"ts": NUMBER_S, "files": STRING_S})
        fetch = ObjectTuple({"ts": NUMBER_S, "url": STRING_S})
        diff = diff_schemas(union(login, serve), union(login, serve, fetch))
        assert len(diff.changes) == 1
        assert diff.changes[0].kind is ChangeKind.ENTITY_ADDED

    def test_removed_entity(self):
        login = ObjectTuple({"ts": NUMBER_S, "user": STRING_S})
        serve = ObjectTuple({"ts": NUMBER_S, "files": STRING_S})
        diff = diff_schemas(union(login, serve), login)
        assert any(
            change.kind is ChangeKind.ENTITY_REMOVED
            for change in diff.changes
        )

    def test_similar_entities_pair_up(self):
        """Changing one field of one entity reports that field, not an
        entity swap."""
        login_old = ObjectTuple({"ts": NUMBER_S, "user": STRING_S})
        login_new = ObjectTuple(
            {"ts": NUMBER_S, "user": STRING_S}, {"mfa": STRING_S}
        )
        serve = ObjectTuple({"ts": NUMBER_S, "files": STRING_S})
        diff = diff_schemas(
            union(login_old, serve), union(login_new, serve)
        )
        assert len(diff.changes) == 1
        assert diff.changes[0].kind is ChangeKind.ADDED
        assert diff.changes[0].path == ("mfa",)


class TestEndToEnd:
    def test_schema_drift_on_synthetic_stream(self):
        """Discover on two eras of the synapse stream; the diff names
        the envelope fields the protocol revisions added."""
        records = make_dataset("synapse").generate(2000, seed=9)
        early = Jxplain().discover(records[:600])
        late = Jxplain().discover(records[-600:])
        diff = diff_schemas(early, late)
        added_paths = {
            change.path[-1]
            for change in diff.changes
            if change.kind in (ChangeKind.ADDED, ChangeKind.ENTITY_ADDED)
            and change.path
        }
        assert "auth_events" in added_paths or any(
            "auth_events" in str(change) for change in diff.changes
        )

    def test_no_drift_same_era(self):
        records = make_dataset("yelp-photos").generate(300, seed=1)
        first = Jxplain().discover(records[:150])
        second = Jxplain().discover(records[150:])
        assert diff_schemas(first, second).is_empty
