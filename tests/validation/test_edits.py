"""Tests for greedy schema repair and the §7.5 edit counter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import Jxplain, KReduce
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    STRING_S,
)
from repro.validation.edits import edits_to_full_recall, repair_schema
from tests.conftest import json_values


class TestRepairSchema:
    def test_admitted_record_costs_nothing(self):
        schema = ObjectTuple({"a": NUMBER_S})
        repaired, log = repair_schema(schema, type_of({"a": 1}))
        assert repaired == schema
        assert log.count == 0

    def test_missing_required_becomes_optional(self):
        schema = ObjectTuple({"a": NUMBER_S, "b": NUMBER_S})
        repaired, log = repair_schema(schema, type_of({"a": 1}))
        assert repaired.admits_value({"a": 1})
        assert repaired.admits_value({"a": 1, "b": 2})
        assert log.count == 1

    def test_new_field_added_optional(self):
        schema = ObjectTuple({"a": NUMBER_S})
        repaired, log = repair_schema(schema, type_of({"a": 1, "z": "s"}))
        assert repaired.admits_value({"a": 1, "z": "s"})
        assert repaired.admits_value({"a": 1})
        assert log.count == 1
        assert "add optional field 'z'" in log.entries[0]

    def test_wrong_kind_adds_branch(self):
        repaired, log = repair_schema(NUMBER_S, type_of("text"))
        assert repaired.admits_value(1)
        assert repaired.admits_value("text")
        assert log.count == 1

    def test_array_tuple_extension(self):
        schema = ArrayTuple((NUMBER_S, NUMBER_S))
        repaired, log = repair_schema(schema, type_of([1, 2, 3]))
        assert repaired.admits_value([1, 2, 3])
        assert repaired.admits_value([1, 2])
        repaired, log = repair_schema(repaired, type_of([1]))
        assert repaired.admits_value([1])

    def test_collection_repairs_ride_free_for_new_keys(self):
        schema = ObjectCollection(NUMBER_S, ("a",))
        repaired, log = repair_schema(schema, type_of({"new_key": 5}))
        # Collections already admit new keys: no edit, no change.
        assert log.count == 0
        assert repaired == schema

    def test_collection_element_type_widens(self):
        schema = ArrayCollection(NUMBER_S, 2)
        repaired, log = repair_schema(schema, type_of(["text"]))
        assert repaired.admits_value(["text", 1.0])
        assert log.count == 1

    def test_never_repair(self):
        repaired, log = repair_schema(NEVER, type_of({"a": 1}))
        assert repaired.admits_value({"a": 1})
        assert log.count == 1

    @given(json_values(max_leaves=8), json_values(max_leaves=8))
    @settings(max_examples=60, deadline=None)
    def test_repair_always_admits(self, seed_value, new_value):
        """Repair is total: any record can be patched in, and the
        original seed value stays admitted."""
        schema = Jxplain().discover([seed_value])
        repaired, _ = repair_schema(schema, type_of(new_value))
        assert repaired.admits_value(new_value)
        assert repaired.admits_value(seed_value)


class TestEditsToFullRecall:
    def test_zero_edits_when_all_admitted(self, login_serve_stream):
        schema = Jxplain().discover(login_serve_stream)
        report = edits_to_full_recall(
            schema, [type_of(r) for r in login_serve_stream]
        )
        assert report.edit_count == 0
        assert report.repaired_records == 0

    def test_shared_fixes_counted_once(self):
        schema = ObjectTuple({"a": NUMBER_S})
        rejects = [type_of({"a": 1, "z": i}) for i in range(5)]
        report = edits_to_full_recall(schema, rejects)
        # One edit (add optional z) covers all five rejects.
        assert report.edit_count == 1
        assert report.repaired_records == 1

    def test_final_schema_has_full_recall(self, login_serve_stream):
        tiny_schema = Jxplain().discover(login_serve_stream[:2])
        types = [type_of(r) for r in login_serve_stream]
        report = edits_to_full_recall(tiny_schema, types)
        for tau in types:
            assert report.schema.admits_type(tau)

    def test_collection_schemas_need_fewer_edits(self):
        """§7.5's observation: Bimax-Merge needs fewer edits than
        K-reduce on collection-like data (new keys are free)."""
        drugs = [
            {"counts": {f"drug{i}": 1, f"drug{i+1}": 2}}
            for i in range(0, 60, 2)
        ]
        train, test = drugs[:10], drugs[10:]
        test_types = [type_of(r) for r in test]
        jx_report = edits_to_full_recall(
            Jxplain().discover(train), test_types
        )
        kr_report = edits_to_full_recall(
            KReduce().discover(train), test_types
        )
        assert jx_report.edit_count < kr_report.edit_count

    def test_edits_per_failure(self):
        schema = ObjectTuple({"a": NUMBER_S})
        report = edits_to_full_recall(schema, [type_of({"a": 1, "z": 1})])
        assert report.edits_per_failure == 1.0
        empty = edits_to_full_recall(schema, [])
        assert empty.edits_per_failure == 0.0
