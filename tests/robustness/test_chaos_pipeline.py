"""Chaos harness: discovery output is invariant under injected faults.

The acceptance bar for the fault-tolerance layer: with a
:class:`FaultPlan` injecting at least one crash and one timeout into
*every* stage of the staged JXPLAIN pipeline (plus a corrupt result in
synthesis), the discovered schema is byte-identical to a fault-free
run, and the retry/timeout counters account for exactly the injected
faults — no more (no spurious retries), no less (the plan really
fired).  The same invariance is asserted for the K-reduce fold and for
genuine process-pool worker crashes.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro.datasets import make_dataset
from repro.discovery.kreduce import merge_k, merge_k_schemas
from repro.discovery.pipeline import JxplainPipeline
from repro.engine import (
    LocalDataset,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    clear_fault_plan,
    counters,
    install_fault_plan,
    stage_scope,
)
from repro.jsontypes.types import type_of
from repro.schema import to_json_schema


#: Short per-attempt deadline; injected delays sleep well past it.
TASK_TIMEOUT = 0.4
INJECTED_DELAY = 1.5

CHAOS_POLICY = RetryPolicy(
    max_retries=3,
    task_timeout=TASK_TIMEOUT,
    backoff_base=0.001,
    on_failure="serial",
)

#: ≥1 crash and ≥1 timeout in every pipeline stage, plus one corrupt
#: result during synthesis.  All faults stand down after one firing,
#: so a single retry clears each.
PIPELINE_PLAN = ",".join(
    [
        f"parse:0:raise,parse:1:delay:1:{INJECTED_DELAY}",
        f"pass1-collections:1:raise,pass1-collections:2:delay:1:{INJECTED_DELAY}",
        f"pass2-entities:2:raise,pass2-entities:3:delay:1:{INJECTED_DELAY}",
        f"pass3-synthesis:3:raise,pass3-synthesis:0:delay:1:{INJECTED_DELAY}",
        "pass3-synthesis:2:corrupt",
    ]
)


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def records():
    """A multi-entity corpus small enough that honest per-partition
    work finishes far inside the injected deadline."""
    return make_dataset("github").generate(160, seed=7)


def schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


def _delta(before, name: str) -> float:
    return counters.get(name) - before.get(name, 0)


class TestPipelineChaos:
    def test_jxplain_output_identical_under_faults(self, records):
        baseline = JxplainPipeline(
            num_partitions=4, executor=SerialExecutor()
        ).run(records)
        install_fault_plan(PIPELINE_PLAN)
        executor = ThreadExecutor(4, retry=CHAOS_POLICY)
        before = counters.snapshot()
        try:
            chaotic = JxplainPipeline(num_partitions=4, executor=executor).run(
                records
            )
        finally:
            executor.close()
        assert schema_bytes(chaotic.schema) == schema_bytes(baseline.schema)
        assert chaotic.record_count == baseline.record_count
        assert chaotic.decisions == baseline.decisions

        injected_raise = _delta(before, "faults.injected_raise")
        injected_delay = _delta(before, "faults.injected_delay")
        injected_corrupt = _delta(before, "faults.injected_corrupt")
        # The plan names one crash and one timeout per stage (they can
        # fire again in pass ②'s partitioner fan-out, which shares the
        # stage label — that is by design, and also retried away).
        assert injected_raise >= 4
        assert injected_delay >= 4
        assert injected_corrupt >= 1
        # Every injected delay overran the deadline; nothing else did.
        assert _delta(before, "executor.timeouts") == injected_delay
        # Exactly one retry per injected fault, of any kind.
        assert _delta(before, "executor.retries") == (
            injected_raise + injected_delay + injected_corrupt
        )
        assert _delta(before, "executor.corrupt_results") == injected_corrupt
        # Retries sufficed: nothing escalated, nothing was dropped.
        assert _delta(before, "executor.serial_rescues") == 0
        assert _delta(before, "executor.skipped_tasks") == 0

    def test_robustness_config_wires_the_policy(self, records):
        """The same invariance, configured via RobustnessConfig."""
        from repro.discovery import RobustnessConfig

        baseline = JxplainPipeline(num_partitions=4).discover(records)
        install_fault_plan("parse:0:raise:1,pass3-synthesis:1:raise:1")
        robust = JxplainPipeline(
            num_partitions=4,
            executor=ThreadExecutor(2),
            robustness=RobustnessConfig(
                max_retries=2, backoff_base=0.001, on_failure="serial"
            ),
        )
        assert schema_bytes(robust.discover(records)) == schema_bytes(baseline)


def _kreduce_partition(partition):
    return [merge_k([type_of(record) for record in partition])]


class TestKReduceChaos:
    def test_kreduce_fold_identical_under_faults(self, records):
        def fold(executor):
            dataset = LocalDataset.from_records(records, 4, executor=executor)
            with stage_scope("kreduce-fold"):
                partials = dataset.map_partitions(_kreduce_partition).collect()
            return functools.reduce(merge_k_schemas, partials)

        baseline = fold(SerialExecutor())
        install_fault_plan(
            f"kreduce-fold:0:raise,kreduce-fold:3:delay:1:{INJECTED_DELAY},"
            "kreduce-fold:1:corrupt"
        )
        executor = ThreadExecutor(4, retry=CHAOS_POLICY)
        before = counters.snapshot()
        try:
            chaotic = fold(executor)
        finally:
            executor.close()
        assert schema_bytes(chaotic) == schema_bytes(baseline)
        assert _delta(before, "faults.injected_raise") == 1
        assert _delta(before, "faults.injected_delay") == 1
        assert _delta(before, "faults.injected_corrupt") == 1
        assert _delta(before, "executor.retries") == 3
        assert _delta(before, "executor.timeouts") == 1
        assert _delta(before, "executor.skipped_tasks") == 0


def _tag(record):
    # Module-level and closure-free so the process backend ships it to
    # real pool workers instead of degrading to the driver.
    return {"type": record.get("type", "?"), "n": len(record)}


class TestProcessWorkerChaos:
    def test_real_worker_crashes_are_survived(self, records):
        serial = LocalDataset.from_records(records, 4).map(_tag).collect()
        install_fault_plan(
            f"process-map:1:raise,process-map:2:delay:1:{INJECTED_DELAY}"
        )
        executor = ProcessExecutor(2, retry=CHAOS_POLICY)
        before = counters.snapshot()
        try:
            dataset = LocalDataset.from_records(records, 4, executor=executor)
            with stage_scope("process-map"):
                parallel = dataset.map(_tag).collect()
        finally:
            executor.close()
        assert parallel == serial
        # The crash really happened in a pool worker (no pickling
        # degradation took place) and one retry cleared each fault.
        assert executor.last_fallback_error is None
        assert _delta(before, "executor.process_fallbacks") == 0
        assert _delta(before, "faults.injected_raise") == 1
        assert _delta(before, "faults.injected_delay") == 1
        assert _delta(before, "executor.retries") == 2
        assert _delta(before, "executor.timeouts") == 1


class TestEnvDrivenChaos:
    def test_repro_faults_env_plan_fires(self, monkeypatch, records):
        from repro.engine.faults import FAULTS_ENV_VAR

        baseline = JxplainPipeline(num_partitions=4).discover(records)
        monkeypatch.setenv(FAULTS_ENV_VAR, "pass1-collections:0:raise:1")
        executor = ThreadExecutor(2, retry=CHAOS_POLICY)
        before = counters.snapshot()
        try:
            schema = JxplainPipeline(
                num_partitions=4, executor=executor
            ).discover(records)
        finally:
            executor.close()
        assert schema_bytes(schema) == schema_bytes(baseline)
        assert _delta(before, "faults.injected_raise") == 1
