"""Supervision semantics of ``Executor.map_list`` under a RetryPolicy.

Covers the escalation chain (retry → serial-fallback → skip), per-task
deadlines, the deterministic backoff schedule, and the
process-fallback visibility bugfix.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import (
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    counters,
    retry_delay,
)
from repro.errors import EngineError


#: A fast policy for tests: real semantics, negligible sleeping.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, on_failure="raise")


class Flaky:
    """Fails the first ``failures`` calls per item, then succeeds.

    Thread-safe and picklable-unfriendly on purpose (it carries a
    lock), so process backends exercise their serial degradation.
    """

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = {}
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            seen = self.calls.get(item, 0)
            self.calls[item] = seen + 1
        if seen < self.failures:
            raise ValueError(f"transient failure #{seen} for {item!r}")
        return item * 10


def _snapshot():
    return counters.snapshot()


def _delta(before, name):
    return counters.get(name) - before.get(name, 0)


@pytest.mark.parametrize(
    "make_executor",
    [
        lambda p: SerialExecutor(retry=p),
        lambda p: ThreadExecutor(3, retry=p),
    ],
    ids=["serial", "threads"],
)
def test_transient_failures_are_retried_away(make_executor):
    executor = make_executor(FAST)
    flaky = Flaky(failures=2)
    before = _snapshot()
    try:
        assert executor.map_list(flaky, [1, 2, 3]) == [10, 20, 30]
    finally:
        executor.close()
    assert _delta(before, "executor.retries") == 6
    assert _delta(before, "executor.task_failures") == 6
    assert _delta(before, "executor.skipped_tasks") == 0


def test_retries_exhausted_raises_last_error():
    executor = SerialExecutor(retry=FAST)
    flaky = Flaky(failures=10)
    with pytest.raises(ValueError, match="transient failure #2"):
        executor.map_list(flaky, [1])


def test_serial_fallback_rescues_after_retries():
    policy = FAST.with_(on_failure="serial")
    executor = SerialExecutor(retry=policy)
    # Fails 3 times (first attempt + 2 retries), so only the serial
    # rescue — attempt number 4 — succeeds.
    flaky = Flaky(failures=3)
    before = _snapshot()
    assert executor.map_list(flaky, [7]) == [70]
    assert _delta(before, "executor.serial_rescues") == 1


def test_skip_yields_none_for_hopeless_tasks():
    policy = FAST.with_(on_failure="skip")
    executor = ThreadExecutor(2, retry=policy)

    try:
        before = _snapshot()
        result = executor.map_list(_fail_on_two, [1, 2, 3])
    finally:
        executor.close()
    assert result == [100, None, 300]
    assert _delta(before, "executor.skipped_tasks") == 1
    # The rescue was attempted before skipping.
    assert _delta(before, "executor.serial_rescues") == 1


def _fail_on_two(item):
    if item == 2:
        raise RuntimeError("permanently broken")
    return item * 100


def _slow_then_value(item):
    if item == "slow":
        time.sleep(0.8)
    return item


def test_deadline_times_out_and_raises():
    policy = RetryPolicy(
        max_retries=0, task_timeout=0.1, on_failure="raise"
    )
    executor = ThreadExecutor(2, retry=policy)
    try:
        before = _snapshot()
        with pytest.raises(EngineError, match="deadline"):
            executor.map_list(_slow_then_value, ["fast", "slow"])
    finally:
        executor.close()
    assert _delta(before, "executor.timeouts") == 1


def test_deadline_skip_keeps_fast_results():
    # The serial rescue re-runs the slow task in-driver (no deadline
    # there), so even a chronically slow task completes under "skip".
    policy = RetryPolicy(
        max_retries=0, task_timeout=0.1, on_failure="skip"
    )
    executor = ThreadExecutor(2, retry=policy)
    try:
        assert executor.map_list(_slow_then_value, ["a", "slow", "b"]) == [
            "a",
            "slow",
            "b",
        ]
    finally:
        executor.close()


class TestBackoffSchedule:
    def test_deterministic(self):
        policy = RetryPolicy(seed=42)
        first = [retry_delay(policy, t, a) for t in range(4) for a in (1, 2, 3)]
        second = [retry_delay(policy, t, a) for t in range(4) for a in (1, 2, 3)]
        assert first == second

    def test_exponential_envelope(self):
        policy = RetryPolicy(
            backoff_base=0.01, backoff_multiplier=2.0, jitter=0.1
        )
        for attempt in (1, 2, 3, 4):
            base = 0.01 * 2.0 ** (attempt - 1)
            delay = retry_delay(policy, 0, attempt)
            assert base <= delay <= base * 1.1

    def test_jitter_decorrelates_tasks(self):
        policy = RetryPolicy(jitter=0.5)
        delays = {retry_delay(policy, task, 1) for task in range(16)}
        assert len(delays) > 1

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.25, jitter=0.0)
        assert retry_delay(policy, 3, 1) == 0.25
        assert retry_delay(policy, 3, 2) == 0.5


class TestPolicyValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(EngineError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(EngineError):
            RetryPolicy(task_timeout=0)
        with pytest.raises(EngineError):
            RetryPolicy(on_failure="shrug")
        with pytest.raises(EngineError):
            RetryPolicy(jitter=1.5)

    def test_with_retry_preserves_backend(self):
        executor = ThreadExecutor(5)
        supervised = executor.with_retry(FAST)
        assert type(supervised) is ThreadExecutor
        assert supervised.workers == 5
        assert supervised.retry == FAST
        assert executor.retry is None


class TestProcessFallbackVisibility:
    """The satellite bugfix: degraded runs must say why."""

    def test_unpicklable_fn_error_is_preserved(self):
        executor = ProcessExecutor(2)
        before = _snapshot()
        # A lambda cannot be pickled; the fallback must run serially
        # AND record the pickling error.
        assert executor.map_list(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert _delta(before, "executor.process_fallbacks") == 1
        assert executor.last_fallback_error is not None
        assert "pickle" in executor.last_fallback_error.lower()
        assert "degraded=" in repr(executor)
        executor.close()

    def test_healthy_executor_repr_is_clean(self):
        executor = ProcessExecutor(2)
        assert executor.last_fallback_error is None
        assert "degraded" not in repr(executor)

    def test_supervised_unpicklable_work_degrades_with_retries(self):
        executor = ProcessExecutor(2, retry=FAST)
        flaky = Flaky(failures=1)  # unpicklable: carries a lock
        before = _snapshot()
        assert executor.map_list(flaky, [1, 2]) == [10, 20]
        assert _delta(before, "executor.process_fallbacks") == 1
        assert _delta(before, "executor.retries") == 2
        assert executor.last_fallback_error is not None
        executor.close()


def test_supervised_process_pool_retries_real_crashes():
    policy = RetryPolicy(max_retries=2, backoff_base=0.001, on_failure="raise")
    executor = ProcessExecutor(2, retry=policy)
    try:
        # _crash_once is module-level and picklable; it really raises
        # inside a pool worker on the first call per item (tracked via
        # a scratch file because worker state is per-process).
        import tempfile, os

        scratch = tempfile.mkdtemp()
        items = [(scratch, 1), (scratch, 2)]
        assert executor.map_list(_crash_once, items) == [1, 2]
    finally:
        executor.close()


def _crash_once(task):
    import os

    scratch, item = task
    marker = os.path.join(scratch, f"seen-{item}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError(f"worker crash for {item}")
    return item
