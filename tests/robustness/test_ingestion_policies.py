"""Error-channel ingestion over the malformed fixture corpus.

Each fixture file under ``fixtures/`` captures one class of real-world
dirt.  These tests pin, per file and per policy: the recovered record
count, the exact bad line numbers and byte offsets, and the payload
retention rules — plus that the default ``raise`` policy keeps the
seed's abort-on-first-error behaviour.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import LocalDataset
from repro.errors import DatasetError
from repro.io import (
    BAD_PAYLOAD_LIMIT,
    IngestReport,
    ingest_jsonlines,
    load_jsonlines,
    read_jsonlines,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


#: name -> (recovered record count, bad line numbers, bad byte offsets,
#:          total lines)
EXPECTED = {
    "truncated.jsonl": (2, [3], [74], 3),
    "bom.jsonl": (2, [], [], 2),
    "nul_bytes.jsonl": (2, [2, 3], [22, 27], 4),
    "deep_nesting.jsonl": (2, [2], [10], 3),
    "duplicate_keys.jsonl": (3, [], [], 3),
    "mixed_garbage.jsonl": (2, [3, 4], [13, 43], 5),
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
@pytest.mark.parametrize("policy", ["skip", "collect"])
def test_policies_recover_and_locate(name, policy):
    records, report = ingest_jsonlines(fixture(name), on_bad_record=policy)
    count, bad_lines, bad_offsets, total_lines = EXPECTED[name]
    assert len(records) == count
    assert report.record_count == count
    assert report.bad_line_numbers() == bad_lines
    assert [bad.byte_offset for bad in report.bad_records] == bad_offsets
    assert report.total_lines == total_lines
    assert report.ok == (not bad_lines)
    assert report.policy == policy


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_skip_and_collect_agree_on_records(name):
    skipped, _ = ingest_jsonlines(fixture(name), on_bad_record="skip")
    collected, _ = ingest_jsonlines(fixture(name), on_bad_record="collect")
    assert skipped == collected


def test_payload_retention_rules():
    _, skip_report = ingest_jsonlines(
        fixture("mixed_garbage.jsonl"), on_bad_record="skip"
    )
    _, collect_report = ingest_jsonlines(
        fixture("mixed_garbage.jsonl"), on_bad_record="collect"
    )
    assert all(bad.payload == "" for bad in skip_report.bad_records)
    assert collect_report.bad_records[0].payload.startswith("this line")
    # Both record *why*, only collect records *what*.
    assert all(bad.error for bad in skip_report.bad_records)


def test_collect_truncates_huge_payloads():
    _, report = ingest_jsonlines(
        fixture("deep_nesting.jsonl"), on_bad_record="collect"
    )
    (bad,) = report.bad_records
    assert len(bad.payload) == BAD_PAYLOAD_LIMIT
    assert bad.error.startswith("RecursionError")


@pytest.mark.parametrize(
    "name",
    [n for n, (_, bad, _, _) in EXPECTED.items() if bad],
)
def test_default_raise_policy_aborts(name):
    with pytest.raises(DatasetError) as excinfo:
        load_jsonlines(fixture(name))
    first_bad = EXPECTED[name][1][0]
    assert f":{first_bad}:" in str(excinfo.value)


def test_raise_policy_passes_clean_fixtures():
    records = load_jsonlines(fixture("duplicate_keys.jsonl"))
    # RFC 8259 leaves duplicate-key semantics open; Python keeps the
    # last binding, which is the behaviour we pin.
    assert records[0] == {"id": 2, "name": "first"}
    assert records[1] == {"a": {"x": 3}}


def test_bom_is_tolerated_under_every_policy():
    for policy in ("raise", "skip", "collect"):
        records, report = (
            (load_jsonlines(fixture("bom.jsonl")), None)
            if policy == "raise"
            else ingest_jsonlines(fixture("bom.jsonl"), on_bad_record=policy)
        )
        assert records[0] == {"id": 1, "name": "alpha"}
        if report is not None:
            assert report.ok


def test_caller_supplied_report_fills_incrementally():
    report = IngestReport(path="x")
    stream = read_jsonlines(
        fixture("nul_bytes.jsonl"), on_bad_record="skip", report=report
    )
    first = next(stream)
    assert first == {"id": 1, "ok": True}
    assert report.record_count == 1 and report.bad_count == 0
    rest = list(stream)
    assert len(rest) == 1
    assert report.bad_line_numbers() == [2, 3]


def test_unknown_policy_rejected():
    with pytest.raises(DatasetError):
        load_jsonlines(fixture("bom.jsonl"), on_bad_record="ignore")


def test_gzip_round_trip_with_bad_lines(tmp_path):
    import gzip

    path = tmp_path / "dirty.jsonl.gz"
    with gzip.open(path, "wb") as handle:
        handle.write(b'{"a": 1}\nnot json\n{"a": 2}\n')
    records, report = ingest_jsonlines(path, on_bad_record="collect")
    assert records == [{"a": 1}, {"a": 2}]
    assert report.bad_line_numbers() == [2]
    # Offsets are into the decompressed stream.
    assert report.bad_records[0].byte_offset == 9


def test_dataset_from_jsonlines_attaches_report():
    dataset = LocalDataset.from_jsonlines(
        fixture("truncated.jsonl"), 2, on_bad_record="skip"
    )
    assert dataset.collect() == [
        {"id": 1, "kind": "event"},
        {"id": 2, "kind": "event", "tags": ["a", "b"]},
    ]
    assert dataset.ingest_report is not None
    assert dataset.ingest_report.bad_line_numbers() == [3]
    # Derived datasets describe transformations, not the source file.
    assert dataset.map(lambda r: r).ingest_report is None


def test_dataset_from_jsonlines_default_raises():
    with pytest.raises(DatasetError):
        LocalDataset.from_jsonlines(fixture("truncated.jsonl"))


def test_report_summary_names_positions():
    _, report = ingest_jsonlines(
        fixture("nul_bytes.jsonl"), on_bad_record="skip"
    )
    summary = report.summary()
    assert "2 bad line(s)" in summary and "2, 3" in summary


def test_ingest_counters_tick():
    from repro.engine.instrument import counters

    before = counters.get("ingest.bad_records")
    ingest_jsonlines(fixture("mixed_garbage.jsonl"), on_bad_record="skip")
    assert counters.get("ingest.bad_records") == before + 2


def test_fixture_corpus_is_regenerable():
    """The checked-in bytes match the generator script exactly."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "make_fixtures", os.path.join(FIXTURES, "make_fixtures.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Generate into a scratch dir by repointing HERE.
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        module.HERE = scratch
        module.main()
        for name in EXPECTED:
            with open(os.path.join(FIXTURES, name), "rb") as handle:
                committed = handle.read()
            with open(os.path.join(scratch, name), "rb") as handle:
                regenerated = handle.read()
            assert committed == regenerated, name
