"""FaultPlan parsing, matching, installation, and execution."""

from __future__ import annotations

import pytest

from repro.engine import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    active_fault_plan,
    clear_fault_plan,
    current_stage,
    install_fault_plan,
    stage_scope,
)
from repro.engine.faults import (
    CorruptResult,
    FAULTS_ENV_VAR,
    FaultError,
    run_with_fault,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestParsing:
    def test_grammar(self):
        plan = FaultPlan.parse(
            "pass1-collections:0:raise,parse:2:delay:3:0.25,pass3:1:corrupt"
        )
        assert plan.faults == (
            FaultSpec("pass1-collections", 0, "raise"),
            FaultSpec("parse", 2, "delay", times=3, delay=0.25),
            FaultSpec("pass3", 1, "corrupt"),
        )

    def test_blank_chunks_ignored(self):
        assert FaultPlan.parse(" , a:0:raise , ").faults == (
            FaultSpec("a", 0, "raise"),
        )

    def test_bad_specs_rejected(self):
        for text in ("a:b", "a:x:raise", "a:0:explode", "a:0:delay:0:-1"):
            with pytest.raises(FaultError):
                FaultPlan.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "stage:0:raise")
        plan = FaultPlan.from_env()
        assert plan.faults[0].stage == "stage"
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert FaultPlan.from_env() is None


class TestMatching:
    def test_stage_index_attempt(self):
        spec = FaultSpec("s", 2, "raise", times=2)
        assert spec.matches("s", 2, 0)
        assert spec.matches("s", 2, 1)
        assert not spec.matches("s", 2, 2)  # stood down after `times`
        assert not spec.matches("s", 1, 0)
        assert not spec.matches("other", 2, 0)

    def test_wildcard_stage(self):
        spec = FaultSpec("*", 0, "delay")
        assert spec.matches("anything", 0, 0)
        assert spec.matches(None, 0, 0)

    def test_plan_targeting(self):
        plan = FaultPlan.parse("alpha:0:raise")
        assert plan.targets_stage("alpha")
        assert not plan.targets_stage("beta")
        assert FaultPlan.parse("*:0:raise").targets_stage("beta")


class TestInstallation:
    def test_install_and_clear(self):
        assert active_fault_plan() is None
        install_fault_plan("s:0:raise")
        assert active_fault_plan().targets_stage("s")
        clear_fault_plan()
        assert active_fault_plan() is None

    def test_env_var_is_picked_up_lazily(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "envstage:1:delay")
        plan = active_fault_plan()
        assert plan is not None and plan.targets_stage("envstage")

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "envstage:1:delay")
        install_fault_plan("code:0:raise")
        assert active_fault_plan().targets_stage("code")


class TestStageScope:
    def test_nesting(self):
        assert current_stage() is None
        with stage_scope("outer"):
            assert current_stage() == "outer"
            with stage_scope("inner"):
                assert current_stage() == "inner"
            assert current_stage() == "outer"
        assert current_stage() is None

    def test_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with stage_scope("doomed"):
                raise RuntimeError("boom")
        assert current_stage() is None


class TestExecution:
    def test_raise_fault(self):
        with pytest.raises(InjectedFault):
            run_with_fault(lambda x: x, 1, FaultSpec("s", 0, "raise"))

    def test_delay_fault_still_computes(self):
        spec = FaultSpec("s", 0, "delay", delay=0.0)
        assert run_with_fault(lambda x: x + 1, 1, spec) == 2

    def test_corrupt_fault_wraps(self):
        result = run_with_fault(lambda x: x + 1, 1, FaultSpec("s", 0, "corrupt"))
        assert isinstance(result, CorruptResult)
        assert result.original == 2

    def test_no_fault_is_transparent(self):
        assert run_with_fault(lambda x: x * 3, 2, None) == 6


class TestExecutorIntegration:
    def test_fault_outside_stage_never_fires(self):
        install_fault_plan("elsewhere:0:raise")
        executor = SerialExecutor()
        assert executor.map_list(lambda x: x, [1, 2]) == [1, 2]

    def test_unsupervised_fault_propagates(self):
        install_fault_plan("here:1:raise")
        executor = SerialExecutor()
        with stage_scope("here"):
            with pytest.raises(InjectedFault):
                executor.map_list(lambda x: x, [1, 2, 3])

    def test_supervised_fault_is_retried_away(self):
        install_fault_plan("here:1:raise,here:0:corrupt")
        policy = RetryPolicy(max_retries=1, backoff_base=0.0)
        executor = ThreadExecutor(2, retry=policy)
        try:
            with stage_scope("here"):
                assert executor.map_list(_inc, [1, 2, 3]) == [2, 3, 4]
        finally:
            executor.close()

    def test_corrupt_results_never_escape_supervision(self):
        from repro.engine import counters

        install_fault_plan("here:0:corrupt")
        policy = RetryPolicy(max_retries=1, backoff_base=0.0)
        executor = SerialExecutor(retry=policy)
        before = counters.get("executor.corrupt_results")
        with stage_scope("here"):
            assert executor.map_list(_inc, [5]) == [6]
        assert counters.get("executor.corrupt_results") == before + 1

    def test_persistent_fault_exhausts_and_escalates(self):
        # times=99 outlives the retries; serial rescue runs without
        # fault wrapping, so the task still completes.
        install_fault_plan("here:0:raise:99")
        policy = RetryPolicy(
            max_retries=1, backoff_base=0.0, on_failure="serial"
        )
        executor = SerialExecutor(retry=policy)
        with stage_scope("here"):
            assert executor.map_list(_inc, [1]) == [2]


def _inc(x):
    return x + 1
