"""Regenerate the malformed-input fixture corpus.

Run from the repository root::

    python tests/robustness/fixtures/make_fixtures.py

The files are checked in; this script exists so their exact bytes are
reproducible and reviewable.  Each fixture exercises one class of
real-world dirt; the expected per-file accounting lives in
``tests/robustness/test_ingestion_policies.py``.
"""

from __future__ import annotations

import os

HERE = os.path.dirname(os.path.abspath(__file__))


def _write(name: str, payload: bytes) -> None:
    with open(os.path.join(HERE, name), "wb") as handle:
        handle.write(payload)
    print(f"wrote {name} ({len(payload)} bytes)")


def main() -> None:
    # A tail cut mid-record (a partial upload / interrupted writer);
    # no trailing newline on the torn line.
    _write(
        "truncated.jsonl",
        b'{"id": 1, "kind": "event"}\n'
        b'{"id": 2, "kind": "event", "tags": ["a", "b"]}\n'
        b'{"id": 3, "kind": "ev',
    )

    # A UTF-8 byte-order mark from a Windows export: every record is
    # well-formed once the BOM is tolerated.
    _write(
        "bom.jsonl",
        b'\xef\xbb\xbf{"id": 1, "name": "alpha"}\n'
        b'{"id": 2, "name": "beta"}\n',
    )

    # NUL bytes: a pure-NUL line and a record with a raw (unescaped)
    # NUL inside a string literal — both rejected by a strict parser.
    _write(
        "nul_bytes.jsonl",
        b'{"id": 1, "ok": true}\n'
        b"\x00\x00\x00\x00\n"
        b'{"id": 2, "name": "a\x00b"}\n'
        b'{"id": 3, "ok": true}\n',
    )

    # Nesting far past any sane recursion limit (a zip-bomb analogue):
    # the parser must fail on the line, not crash the process.
    depth = 100_000
    _write(
        "deep_nesting.jsonl",
        b'{"id": 1}\n'
        + b"[" * depth
        + b"1"
        + b"]" * depth
        + b"\n"
        + b'{"id": 2}\n',
    )

    # Duplicate keys are *well-formed* JSON (RFC 8259 leaves semantics
    # to the parser); Python keeps the last binding.  Nothing here is
    # a bad record.
    _write(
        "duplicate_keys.jsonl",
        b'{"id": 1, "id": 2, "name": "first"}\n'
        b'{"a": {"x": 1, "x": 2}, "a": {"x": 3}}\n'
        b'{"id": 3}\n',
    )

    # Assorted dirt: blank lines, prose, CRLF line endings, a stray
    # single-quoted almost-JSON line.
    _write(
        "mixed_garbage.jsonl",
        b'{"id": 1}\r\n'
        b"\r\n"
        b"this line is prose, not JSON\r\n"
        b"{'id': 2}\r\n"
        b'{"id": 3}\r\n',
    )


if __name__ == "__main__":
    main()
