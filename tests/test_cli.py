"""Tests for the jxplain command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.jsonlines import write_jsonlines


@pytest.fixture
def figure1_file(tmp_path, figure1_records):
    path = tmp_path / "fig1.jsonl"
    write_jsonlines(path, figure1_records * 10)
    return path


class TestDiscover:
    def test_text_output(self, figure1_file, capsys):
        assert main(["discover", str(figure1_file)]) == 0
        out = capsys.readouterr().out
        assert "ts: number" in out

    def test_json_output_to_file(self, figure1_file, tmp_path):
        target = tmp_path / "schema.json"
        code = main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert "$schema" in document

    def test_algorithm_selection(self, figure1_file, capsys):
        assert main(
            ["discover", str(figure1_file), "--algorithm", "k-reduce"]
        ) == 0
        out = capsys.readouterr().out
        assert "files?" in out  # K-reduce makes files optional

    def test_empty_input_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["discover", str(path)]) == 2


class TestValidate:
    def test_accepts_training_data(self, figure1_file, tmp_path, capsys):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        code = main(["validate", str(schema_path), str(figure1_file)])
        assert code == 0
        assert "recall 1.0000" in capsys.readouterr().out

    def test_rejections_reported_and_explained(
        self, figure1_file, tmp_path, capsys
    ):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        bad_path = tmp_path / "bad.jsonl"
        write_jsonlines(bad_path, [{"ts": 1, "event": "x", "weird": 1}])
        code = main(
            ["validate", str(schema_path), str(bad_path), "--explain", "1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 rejected" in out
        assert "record 0:" in out


class TestOtherCommands:
    def test_generate(self, tmp_path, capsys):
        target = tmp_path / "data.jsonl"
        code = main(
            ["generate", "figure1", str(target), "--records", "25"]
        )
        assert code == 0
        assert "wrote 25 records" in capsys.readouterr().out

    def test_entropy(self, figure1_file, tmp_path, capsys):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        assert main(["entropy", str(schema_path)]) == 0
        float(capsys.readouterr().out)

    def test_lists(self, capsys):
        assert main(["datasets"]) == 0
        assert "github" in capsys.readouterr().out
        assert main(["algorithms"]) == 0
        assert "bimax-merge" in capsys.readouterr().out
