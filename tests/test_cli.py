"""Tests for the jxplain command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.jsonlines import write_jsonlines


@pytest.fixture
def figure1_file(tmp_path, figure1_records):
    path = tmp_path / "fig1.jsonl"
    write_jsonlines(path, figure1_records * 10)
    return path


class TestDiscover:
    def test_text_output(self, figure1_file, capsys):
        assert main(["discover", str(figure1_file)]) == 0
        out = capsys.readouterr().out
        assert "ts: number" in out

    def test_json_output_to_file(self, figure1_file, tmp_path):
        target = tmp_path / "schema.json"
        code = main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert "$schema" in document

    def test_algorithm_selection(self, figure1_file, capsys):
        assert main(
            ["discover", str(figure1_file), "--algorithm", "k-reduce"]
        ) == 0
        out = capsys.readouterr().out
        assert "files?" in out  # K-reduce makes files optional

    def test_empty_input_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["discover", str(path)]) == 2


class TestValidate:
    def test_accepts_training_data(self, figure1_file, tmp_path, capsys):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        code = main(["validate", str(schema_path), str(figure1_file)])
        assert code == 0
        assert "recall 1.0000" in capsys.readouterr().out

    def test_rejections_reported_and_explained(
        self, figure1_file, tmp_path, capsys
    ):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        bad_path = tmp_path / "bad.jsonl"
        write_jsonlines(bad_path, [{"ts": 1, "event": "x", "weird": 1}])
        code = main(
            ["validate", str(schema_path), str(bad_path), "--explain", "1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 rejected" in out
        assert "record 0:" in out


class TestOtherCommands:
    def test_generate(self, tmp_path, capsys):
        target = tmp_path / "data.jsonl"
        code = main(
            ["generate", "figure1", str(target), "--records", "25"]
        )
        assert code == 0
        assert "wrote 25 records" in capsys.readouterr().out

    def test_entropy(self, figure1_file, tmp_path, capsys):
        schema_path = tmp_path / "schema.json"
        main(
            [
                "discover",
                str(figure1_file),
                "--format",
                "json",
                "--output",
                str(schema_path),
            ]
        )
        assert main(["entropy", str(schema_path)]) == 0
        float(capsys.readouterr().out)

    def test_lists(self, capsys):
        assert main(["datasets"]) == 0
        assert "github" in capsys.readouterr().out
        assert main(["algorithms"]) == 0
        assert "bimax-merge" in capsys.readouterr().out


class TestDiscoverSharded:
    @pytest.fixture
    def corpus(self, tmp_path, figure1_records):
        path = tmp_path / "corpus.jsonl"
        write_jsonlines(path, figure1_records * 60)
        return path

    def test_sharded_matches_serial_state_and_schema(
        self, corpus, tmp_path
    ):
        serial_state = tmp_path / "serial.state"
        serial_out = tmp_path / "serial.out"
        sharded_state = tmp_path / "sharded.state"
        sharded_out = tmp_path / "sharded.out"
        assert main(
            [
                "discover", str(corpus), "--algorithm", "jxplain",
                "--ingest", "fused",
                "--checkpoint", str(serial_state),
                "--output", str(serial_out),
            ]
        ) == 0
        assert main(
            [
                "discover", str(corpus), "--algorithm", "jxplain",
                "--shards", "2",
                "--checkpoint", str(sharded_state),
                "--output", str(sharded_out),
            ]
        ) == 0
        assert sharded_state.read_bytes() == serial_state.read_bytes()
        assert sharded_out.read_text() == serial_out.read_text()
        # Per-shard scratch is cleaned up after the merged checkpoint.
        assert not (tmp_path / "sharded.state.shards").exists()

    def test_sharded_resume_append(self, corpus, tmp_path, figure1_records):
        extra = tmp_path / "extra.jsonl"
        write_jsonlines(extra, figure1_records * 15)
        ckpt = tmp_path / "inc.state"
        assert main(
            [
                "discover", str(corpus), "--shards", "auto",
                "--checkpoint", str(ckpt),
                "--output", str(tmp_path / "first.out"),
            ]
        ) == 0
        assert main(
            [
                "discover", "--resume", "--shards", "auto",
                "--append", str(extra),
                "--checkpoint", str(ckpt),
                "--output", str(tmp_path / "second.out"),
            ]
        ) == 0
        # Equivalent one-shot run over both files, unsharded.
        ref = tmp_path / "ref.state"
        assert main(
            [
                "discover", str(corpus), "--append", str(extra),
                "--ingest", "fused", "--algorithm", "bimax-merge",
                "--checkpoint", str(ref),
                "--output", str(tmp_path / "ref.out"),
            ]
        ) == 0
        assert ckpt.read_bytes() == ref.read_bytes()

    def test_workers_without_shards_errors(self, corpus, capsys):
        assert main(["discover", str(corpus), "--workers", "2"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_bad_shard_count_errors(self, corpus, capsys):
        with pytest.raises(SystemExit):
            main(["discover", str(corpus), "--shards", "zero"])
        assert "--shards" in capsys.readouterr().err

    def test_num_partitions_requires_pipeline(self, corpus, capsys):
        assert main(
            [
                "discover", str(corpus),
                "--algorithm", "l-reduce",
                "--num-partitions", "3",
            ]
        ) == 2
        assert "--num-partitions" in capsys.readouterr().err

    def test_num_partitions_on_pipeline(self, corpus, capsys):
        assert main(
            [
                "discover", str(corpus),
                "--algorithm", "jxplain-pipeline",
                "--num-partitions", "auto",
            ]
        ) == 0
        assert "ts" in capsys.readouterr().out
