"""Tests for repro.jsontypes.kinds."""

from repro.jsontypes.kinds import COMPLEX_KINDS, Kind, PRIMITIVE_KINDS


class TestKind:
    def test_primitive_kinds_are_primitive(self):
        for kind in PRIMITIVE_KINDS:
            assert kind.is_primitive
            assert not kind.is_complex

    def test_complex_kinds_are_complex(self):
        for kind in COMPLEX_KINDS:
            assert kind.is_complex
            assert not kind.is_primitive

    def test_partition_is_complete(self):
        assert set(PRIMITIVE_KINDS) | set(COMPLEX_KINDS) == set(Kind)
        assert not set(PRIMITIVE_KINDS) & set(COMPLEX_KINDS)

    def test_values_are_stable(self):
        # Kind values appear in exported JSON Schema documents, so they
        # are part of the wire format and must not drift.
        assert Kind.BOOLEAN.value == "boolean"
        assert Kind.NUMBER.value == "number"
        assert Kind.STRING.value == "string"
        assert Kind.NULL.value == "null"
        assert Kind.OBJECT.value == "object"
        assert Kind.ARRAY.value == "array"
