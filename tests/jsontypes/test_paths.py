"""Tests for repro.jsontypes.paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.jsontypes.paths import (
    ROOT,
    STAR,
    generalize,
    iter_type_paths,
    iter_value_paths,
    parse_path,
    render_path,
    value_at,
)
from repro.jsontypes.types import type_of


path_steps = st.one_of(
    st.text(alphabet="abcz_", min_size=1, max_size=5),
    st.integers(min_value=0, max_value=99),
    st.just(STAR),
)
paths = st.lists(path_steps, max_size=6).map(tuple)


class TestRendering:
    def test_root(self):
        assert render_path(ROOT) == "$"

    def test_mixed_path(self):
        assert render_path(("a", 0, STAR, "b")) == "$.a[0][*].b"

    @given(paths)
    def test_parse_inverts_render(self, path):
        assert parse_path(render_path(path)) == path

    def test_parse_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            parse_path("a.b")

    def test_parse_rejects_empty_key(self):
        with pytest.raises(ValueError):
            parse_path("$..a")


class TestIteration:
    def test_value_paths(self):
        value = {"a": [1, {"b": True}]}
        found = dict(iter_value_paths(value))
        assert found[()] == value
        assert found[("a",)] == [1, {"b": True}]
        assert found[("a", 0)] == 1
        assert found[("a", 1, "b")] is True

    def test_type_paths_match_value_paths(self):
        value = {"a": [1, "x"], "b": {"c": None}}
        tau = type_of(value)
        type_keys = {path for path, _ in iter_type_paths(tau)}
        value_keys = {path for path, _ in iter_value_paths(value)}
        assert type_keys == value_keys


class TestValueAt:
    def test_follows_objects_and_arrays(self):
        value = {"a": [10, {"b": "hit"}]}
        assert value_at(value, ("a", 1, "b")) == "hit"

    def test_missing_key(self):
        with pytest.raises(KeyError):
            value_at({"a": 1}, ("z",))

    def test_index_out_of_range(self):
        with pytest.raises(KeyError):
            value_at({"a": [1]}, ("a", 5))

    def test_star_rejected(self):
        with pytest.raises(KeyError):
            value_at({"a": 1}, (STAR,))

    def test_descend_into_primitive(self):
        with pytest.raises(KeyError):
            value_at({"a": 1}, ("a", "b"))


class TestGeneralize:
    def test_no_collections(self):
        assert generalize(("a", "b"), frozenset()) == ("a", "b")

    def test_steps_under_collection_become_star(self):
        collections = frozenset({("a",)})
        assert generalize(("a", "k1", "x"), collections) == ("a", STAR, "x")

    def test_nested_collections(self):
        collections = frozenset({("a",), ("a", STAR)})
        assert generalize(("a", "k", "j"), collections) == ("a", STAR, STAR)
