"""Unit and property tests for the bytes-to-type tokenizer layer.

The load-bearing claims: :func:`scan_type` is extensionally equal to
``type_of(json.loads(...))`` (same type object under interning, same
errors), and :func:`structural_skeleton` is collision-safe — equal
skeletons imply equal scanned types, and a malformed line can never
share a skeleton with a valid one it would shadow in the cache.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.jsontypes.tokenizer import (
    DEFAULT_SHAPE_CACHE_SIZE,
    ShapeCache,
    depth_exceeds,
    line_token_count,
    scan_type,
    structural_skeleton,
)
from repro.jsontypes.types import (
    BOOLEAN,
    MAX_DEPTH,
    NULL,
    NUMBER,
    STRING,
    type_of,
)

from tests.conftest import json_keys, json_primitives


def dumps(value) -> str:
    return json.dumps(value, separators=(",", ":"))


# ---------------------------------------------------------------------------
# scan_type ≡ type_of ∘ json.loads
# ---------------------------------------------------------------------------


SCAN_CASES = [
    {},
    {"a": 1},
    {"a": [1, 2, "x"], "b": {"c": None}},
    [],
    [[]],
    [1, True, None, "s", {"k": 0.5}],
    "plain string",
    3,
    -0.5,
    1e300,
    True,
    None,
    {"esc": 'quote " backslash \\ newline \n tab \t'},
    {"unicode": "héllo wörld — ünïcode"},
    {"surrogate pair": "emoji \U0001f600 and 😀-style escapes"},
    {"huge": 10**400},
    {"tiny": -(10**400)},
    {"nested " * 3: {"deep": [[[{"x": [0]}]]]}},
    {"dup": 1, "dup2": {"dup": "s"}},
]


@pytest.mark.parametrize("value", SCAN_CASES, ids=range(len(SCAN_CASES)))
def test_scan_type_matches_type_of(value):
    text = dumps(value)
    assert scan_type(text) is type_of(json.loads(text))


def test_scan_type_handles_escaped_surrogate_text():
    # A lone escaped surrogate is accepted by json.loads; both paths
    # must agree it is just a string.
    text = '{"s": "\\ud800"}'
    assert scan_type(text) is type_of(json.loads(text))


@pytest.mark.parametrize(
    "text",
    [
        "",
        "not json",
        '{"a": 00}',
        '{"a": 1.}',
        '{"a":',
        "[1, 2,]",
        '"unterminated',
        "{'single': 1}",
        "NaN-ish garbage",
    ],
)
def test_scan_type_raises_where_json_loads_raises(text):
    with pytest.raises(ValueError) as scan_error:
        scan_type(text)
    with pytest.raises(ValueError) as loads_error:
        json.loads(text)
    # Same C scanner, same message — this is what keeps the fused
    # error channel byte-identical to the classic one.
    assert str(scan_error.value) == str(loads_error.value)


def test_scan_type_constants_collapse():
    assert scan_type("null") is NULL
    assert scan_type("true") is BOOLEAN
    assert scan_type("false") is BOOLEAN
    assert scan_type("1e9") is NUMBER
    assert scan_type('"x"') is STRING
    assert scan_type("NaN") is NUMBER  # parse_constant hook
    assert type_of(float("nan")) is NUMBER


shallow_values = st.one_of(
    json_primitives,
    st.lists(json_primitives, max_size=3),
    st.dictionaries(json_keys, json_primitives, max_size=3),
)
records = st.dictionaries(json_keys, shallow_values, max_size=5)


@settings(max_examples=80, deadline=None)
@given(value=records)
def test_scan_type_matches_type_of_property(value):
    text = dumps(value)
    assert scan_type(text) is type_of(json.loads(text))


# ---------------------------------------------------------------------------
# Depth bound parity.
# ---------------------------------------------------------------------------


def nested(depth):
    value = 1
    for _ in range(depth):
        value = [value]
    return value


def test_depth_exceeds_matches_type_of_bound():
    at_bound = type_of(nested(MAX_DEPTH - 1))
    assert not depth_exceeds(at_bound)
    over = scan_type(dumps(nested(MAX_DEPTH)))
    assert depth_exceeds(over)
    # type_of itself refuses past the bound.
    from repro.errors import RecursionDepthError

    with pytest.raises(RecursionDepthError):
        type_of(nested(MAX_DEPTH))


def test_deep_arrays_scan_and_check_iteratively():
    # 900 array levels is within what the classic reader's json.loads
    # accepts, so the scanner and the depth checker must both handle
    # it without Python-level recursion.
    deep = scan_type("[" * 900 + "1" + "]" * 900)
    assert scan_type("[" * 900 + "1" + "]" * 900) is deep
    assert depth_exceeds(deep, 256)
    assert not depth_exceeds(deep, 901)


# ---------------------------------------------------------------------------
# Skeleton safety.
# ---------------------------------------------------------------------------


def test_skeleton_none_for_escapes_controls_non_ascii():
    assert structural_skeleton(b'{"a": "x\\ny"}') is None  # backslash
    assert structural_skeleton(b'{"a": "x\ty"}') is None  # control byte
    assert structural_skeleton('{"a": "héllo"}'.encode()) is None
    assert structural_skeleton(b'{"bad": "\xff\xfe"}') is None
    assert structural_skeleton(b'{"unterminated": "...') is None  # parity


def test_skeleton_separates_keys_from_value_strings():
    with_key = structural_skeleton(b'{"name": "alice"}')
    other_value = structural_skeleton(b'{"name": "bob28"}')
    other_key = structural_skeleton(b'{"nome": "alice"}')
    assert with_key is not None
    # Value-string contents are dropped: same shape.
    assert with_key == other_value
    # Key names are part of the shape.
    assert with_key != other_key
    # The space-before-colon form still classifies the key correctly.
    spaced = structural_skeleton(b'{"name" : "alice"}')
    assert spaced is not None
    assert spaced[1] == (b"name",)


def test_skeleton_normalizes_numbers_but_not_almost_numbers():
    a = structural_skeleton(b'{"n": 1}')
    b = structural_skeleton(b'{"n": -2.5e10}')
    assert a == b
    # Invalid spellings stay distinct from every valid spelling.
    assert structural_skeleton(b'{"n": 00}') != a
    assert structural_skeleton(b'{"n": 1.}') != a
    assert structural_skeleton(b'{"n": +5}') != a


@settings(max_examples=150, deadline=None)
@given(first=records, second=records)
def test_equal_skeletons_imply_equal_types(first, second):
    """The collision-safety contract, directly."""
    line_a = dumps(first).encode()
    line_b = dumps(second).encode()
    skel_a = structural_skeleton(line_a)
    skel_b = structural_skeleton(line_b)
    if skel_a is not None and skel_a == skel_b:
        assert scan_type(line_a.decode()) is scan_type(line_b.decode())


@settings(max_examples=100, deadline=None)
@given(value=records)
def test_skeleton_is_deterministic(value):
    line = dumps(value).encode()
    assert structural_skeleton(line) == structural_skeleton(line)


def test_line_token_count():
    assert line_token_count(b'{"a": 1, "b": [2, "x"]}') == 5
    assert line_token_count(b"[]") == 0
    assert line_token_count(b"[1, 2, 3]") == 3
    assert line_token_count(b'"s"') == 1


# ---------------------------------------------------------------------------
# ShapeCache.
# ---------------------------------------------------------------------------


def test_shape_cache_bound_and_fifo_eviction():
    cache = ShapeCache(max_size=2)
    cache.put((b"a", ()), NULL)
    cache.put((b"b", ()), BOOLEAN)
    assert len(cache) == 2
    cache.put((b"c", ()), NUMBER)  # evicts the oldest insert: "a"
    assert len(cache) == 2
    assert (b"a", ()) not in cache
    assert cache.get((b"b", ())) is BOOLEAN
    assert cache.get((b"c", ())) is NUMBER
    assert cache.evictions == 1
    # Re-putting an existing key is not an eviction.
    cache.put((b"b", ()), BOOLEAN)
    assert cache.evictions == 1
    assert cache.stats()["size"] == 2


def test_shape_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        ShapeCache(max_size=0)
    assert ShapeCache().max_size == DEFAULT_SHAPE_CACHE_SIZE
