"""Tests for the depth-bounded similarity variant."""

from hypothesis import given

from repro.discovery import Jxplain, JxplainConfig
from repro.jsontypes.similarity import (
    SimilarityAccumulator,
    similar,
    union_types,
)
from repro.jsontypes.types import type_of
from tests.conftest import json_values


def deep_mixed(kind_value):
    """claims-shaped: {P: [{mainsnak: {datavalue: {value: X}}}]}."""
    return {"P1": [{"mainsnak": {"datavalue": {"value": kind_value}}}]}


class TestBoundedSimilar:
    def test_unbounded_detects_deep_mismatch(self):
        first = type_of(deep_mixed("a string"))
        second = type_of(deep_mixed({"numeric-id": 3}))
        assert not similar(first, second)

    def test_bounded_tolerates_deep_mismatch(self):
        first = type_of(deep_mixed("a string"))
        second = type_of(deep_mixed({"numeric-id": 3}))
        assert similar(first, second, max_depth=3)

    def test_bound_still_catches_shallow_mismatch(self):
        first = type_of({"a": 1})
        second = type_of({"a": "x"})
        assert not similar(first, second, max_depth=3)

    def test_zero_depth_everything_similar(self):
        assert similar(type_of(1), type_of("x"), max_depth=0)

    @given(json_values(max_leaves=8), json_values(max_leaves=8))
    def test_bound_relaxes_monotonically(self, left, right):
        """If two types are similar unbounded, they are similar under
        any bound; a smaller bound never rejects more."""
        first, second = type_of(left), type_of(right)
        unbounded = similar(first, second)
        if unbounded:
            assert similar(first, second, max_depth=5)
            assert similar(first, second, max_depth=2)
        if not similar(first, second, max_depth=5):
            assert not unbounded


class TestBoundedUnion:
    def test_union_keeps_representative_past_bound(self):
        first = type_of(deep_mixed("a string"))
        second = type_of(deep_mixed({"numeric-id": 3}))
        merged = union_types(first, second, max_depth=3)
        # Within the bound, structure is merged; past it, the first
        # side's representative survives.
        assert merged.field("P1") is not None

    def test_accumulator_uses_depth(self):
        acc = SimilarityAccumulator(max_depth=3)
        acc.add(type_of(deep_mixed("a string")))
        acc.add(type_of(deep_mixed({"numeric-id": 3})))
        assert acc.all_similar
        strict = SimilarityAccumulator()
        strict.add(type_of(deep_mixed("a string")))
        strict.add(type_of(deep_mixed({"numeric-id": 3})))
        assert not strict.all_similar

    def test_merge_preserves_depth(self):
        left = SimilarityAccumulator(max_depth=3)
        right = SimilarityAccumulator(max_depth=3)
        left.add(type_of(deep_mixed("a string")))
        right.add(type_of(deep_mixed({"numeric-id": 3})))
        merged = left.merge(right)
        assert merged.all_similar
        assert merged.max_depth == 3


class TestConfigIntegration:
    def test_config_validation(self):
        import pytest

        with pytest.raises(ValueError):
            JxplainConfig(similarity_depth=0).validate()
        JxplainConfig(similarity_depth=3).validate()

    def test_wikidata_style_collection_unlocked(self):
        """The headline effect: claims-like maps become collections
        only under the bounded rule."""
        records = [
            {
                f"P{i}": [
                    {
                        "mainsnak": {
                            "datavalue": {
                                "value": "s" if i % 2 else {"id": i}
                            }
                        }
                    }
                ],
                f"P{i + 50}": [
                    {"mainsnak": {"datavalue": {"value": "t"}}}
                ],
            }
            for i in range(40)
        ]
        literal = Jxplain().discover(records)
        bounded = Jxplain(
            JxplainConfig(similarity_depth=3)
        ).discover(records)
        probe = {
            "P999": [{"mainsnak": {"datavalue": {"value": "new"}}}]
        }
        assert not literal.admits_value(probe)
        assert bounded.admits_value(probe)

    def test_training_recall_preserved_under_bound(self, login_serve_stream):
        schema = Jxplain(
            JxplainConfig(similarity_depth=2)
        ).discover(login_serve_stream)
        for record in login_serve_stream:
            assert schema.admits_value(record)
