"""Tests for repro.jsontypes.types."""

import pytest
from hypothesis import given

from repro.errors import InvalidJsonValueError, RecursionDepthError
from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import (
    ArrayType,
    BOOLEAN,
    EMPTY_ARRAY,
    EMPTY_OBJECT,
    NULL,
    NUMBER,
    ObjectType,
    STRING,
    kind_of,
    type_of,
)
from tests.conftest import json_values


class TestPrimitives:
    def test_interning(self):
        from repro.jsontypes.types import PrimitiveType

        assert PrimitiveType(Kind.NUMBER) is NUMBER
        assert PrimitiveType(Kind.STRING) is STRING

    def test_primitive_from_complex_kind_rejected(self):
        from repro.jsontypes.types import PrimitiveType

        with pytest.raises(InvalidJsonValueError):
            PrimitiveType(Kind.OBJECT)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            NUMBER.kind = Kind.STRING

    def test_keys_empty(self):
        assert NUMBER.keys() == ()

    def test_depth_and_node_count(self):
        assert NUMBER.depth() == 1
        assert NUMBER.node_count() == 1


class TestTypeOf:
    def test_null(self):
        assert type_of(None) is NULL

    def test_bool_is_not_number(self):
        # isinstance(True, int) holds in Python; the extractor must
        # still classify booleans as boolean.
        assert type_of(True) is BOOLEAN
        assert type_of(False) is BOOLEAN

    def test_int_and_float_are_number(self):
        assert type_of(3) is NUMBER
        assert type_of(3.25) is NUMBER

    def test_string(self):
        assert type_of("hi") is STRING

    def test_empty_containers(self):
        assert type_of([]) == EMPTY_ARRAY
        assert type_of({}) == EMPTY_OBJECT

    def test_figure1_type(self, figure1_records):
        # Example 2 of the paper: the record with ts 7.
        tau = type_of(figure1_records[0])
        assert tau.kind == Kind.OBJECT
        assert set(tau.keys()) == {"ts", "event", "user"}
        user = tau.field("user")
        assert user.field("geo") == ArrayType((NUMBER, NUMBER))

    def test_rejects_non_json(self):
        with pytest.raises(InvalidJsonValueError):
            type_of({1, 2})
        with pytest.raises(InvalidJsonValueError):
            type_of(object())

    def test_rejects_non_string_keys(self):
        with pytest.raises(InvalidJsonValueError):
            type_of({1: "x"})

    def test_depth_guard(self):
        value = []
        for _ in range(10):
            value = [value]
        with pytest.raises(RecursionDepthError):
            type_of(value, max_depth=5)

    @given(json_values())
    def test_type_of_total_on_json(self, value):
        tau = type_of(value)
        assert tau.kind == kind_of(value)

    @given(json_values())
    def test_equal_values_equal_types(self, value):
        import copy

        assert type_of(value) == type_of(copy.deepcopy(value))
        assert hash(type_of(value)) == hash(type_of(copy.deepcopy(value)))


class TestObjectType:
    def test_field_order_irrelevant(self):
        first = ObjectType({"a": NUMBER, "b": STRING})
        second = ObjectType({"b": STRING, "a": NUMBER})
        assert first == second
        assert hash(first) == hash(second)

    def test_field_access(self):
        tau = ObjectType({"a": NUMBER})
        assert tau.field("a") is NUMBER
        assert tau.get("missing") is None
        with pytest.raises(KeyError):
            tau.field("missing")

    def test_contains_and_len(self):
        tau = ObjectType({"a": NUMBER, "b": STRING})
        assert "a" in tau
        assert "z" not in tau
        assert len(tau) == 2

    def test_key_set(self):
        tau = ObjectType({"a": NUMBER, "b": STRING})
        assert tau.key_set() == frozenset({"a", "b"})

    def test_immutability(self):
        tau = ObjectType({"a": NUMBER})
        with pytest.raises(AttributeError):
            tau.fields = ()

    def test_nested_field_types_validated(self):
        with pytest.raises(InvalidJsonValueError):
            ObjectType({"a": "not a type"})


class TestArrayType:
    def test_order_matters(self):
        assert ArrayType((NUMBER, STRING)) != ArrayType((STRING, NUMBER))

    def test_keys_are_indices(self):
        tau = ArrayType((NUMBER, STRING))
        assert tau.keys() == (0, 1)
        assert tau.field(1) is STRING
        with pytest.raises(KeyError):
            tau.field(5)

    def test_node_count(self):
        tau = ArrayType((NUMBER, ArrayType((STRING,))))
        assert tau.node_count() == 4

    def test_depth(self):
        tau = ArrayType((ArrayType((ArrayType(()),)),))
        assert tau.depth() == 3
