"""Hash-consing of :class:`JsonType` nodes.

With interning on (the default), structurally equal types built by
``type_of`` are *identical* objects — equality degrades to a pointer
comparison and dict/bag lookups hash each shape once.  These tests pin
the identity guarantee, substructure sharing, the enable toggle, and
pickling (which must survive the immutability guard).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings

from repro.jsontypes import (
    ArrayType,
    ObjectType,
    clear_intern_table,
    intern_stats,
    intern_type,
    interning_enabled,
    set_interning,
    type_of,
)
from repro.jsontypes.types import reset_intern_stats
from tests.conftest import json_values


@pytest.fixture
def interning_off():
    old = set_interning(False)
    try:
        yield
    finally:
        set_interning(old)


class TestIdentity:
    def test_equal_values_intern_to_same_object(self):
        value = {"a": [1, 2, {"b": "x"}], "c": None}
        assert type_of(value) is type_of(dict(value))

    @settings(max_examples=60, deadline=None)
    @given(value=json_values())
    def test_identity_for_arbitrary_values(self, value):
        assert type_of(value) is type_of(value)

    def test_nested_substructure_is_shared(self):
        first = dict(type_of({"user": {"id": 1}, "owner": {"id": 2}}).items())
        assert first["user"] is first["owner"]
        second = type_of([{"id": 7}])
        assert second.elements[0] is first["user"]

    def test_primitives_are_singletons_regardless(self, interning_off):
        # Primitive kinds were already canonical before interning.
        assert type_of(1) is type_of(2.5)
        assert type_of("a") is type_of("b")

    def test_intern_type_is_idempotent(self):
        tau = intern_type(ObjectType({"k": ArrayType((type_of(1),))}))
        assert intern_type(tau) is tau
        assert tau is type_of({"k": [0]})


class TestToggle:
    def test_disabled_builds_fresh_equal_nodes(self, interning_off):
        assert not interning_enabled()
        first = type_of({"a": [1]})
        second = type_of({"a": [1]})
        assert first == second
        assert first is not second

    def test_reenabling_restores_identity(self, interning_off):
        set_interning(True)
        assert type_of({"z": 1}) is type_of({"z": 1})
        set_interning(False)

    def test_stats_move_with_usage(self):
        clear_intern_table()
        reset_intern_stats()
        type_of({"fresh-stats-key": [1, "x"]})
        misses_after_first = intern_stats()["misses"]
        assert misses_after_first >= 1
        type_of({"fresh-stats-key": [2, "y"]})
        stats = intern_stats()
        assert stats["hits"] >= 1
        assert stats["size"] >= 1


class TestPickling:
    @pytest.mark.parametrize(
        "value",
        [1, "s", None, True, [1, [2]], {"a": {"b": [None]}}, [], {}],
    )
    def test_round_trip_preserves_equality(self, value):
        tau = type_of(value)
        clone = pickle.loads(pickle.dumps(tau))
        assert clone == tau
        assert hash(clone) == hash(tau)

    def test_primitive_round_trip_preserves_identity(self):
        tau = type_of("text")
        assert pickle.loads(pickle.dumps(tau)) is tau

    def test_unpickled_complex_reinterns_to_identity(self):
        tau = type_of({"a": [1]})
        clone = pickle.loads(pickle.dumps(tau))
        assert intern_type(clone) is tau

    def test_equality_identity_fast_path(self):
        tau = type_of({"deep": [[{"x": 1}]]})
        assert tau == tau
        assert not (tau != tau)
        assert tau != type_of("a string")
