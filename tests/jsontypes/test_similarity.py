"""Tests for the similarity relation (§5.2) and its accumulator."""

from hypothesis import given
from hypothesis import strategies as st

from repro.jsontypes.similarity import (
    SimilarityAccumulator,
    all_pairwise_similar,
    similar,
    union_types,
)
from repro.jsontypes.types import (
    ArrayType,
    BOOLEAN,
    NULL,
    NUMBER,
    ObjectType,
    STRING,
    type_of,
)
from tests.conftest import json_values

import pytest

types = json_values(max_leaves=10).map(type_of)


class TestSimilarRule:
    def test_null_similar_to_everything(self):
        for other in (NUMBER, STRING, BOOLEAN, ObjectType({"a": NUMBER})):
            assert similar(NULL, other)
            assert similar(other, NULL)

    def test_primitives_similar_only_to_themselves(self):
        assert similar(NUMBER, NUMBER)
        assert not similar(NUMBER, STRING)
        assert not similar(BOOLEAN, STRING)

    def test_primitive_vs_complex(self):
        assert not similar(NUMBER, ObjectType({}))
        assert not similar(ArrayType(()), STRING)

    def test_object_vs_array_never_similar(self):
        assert not similar(ObjectType({}), ArrayType(()))

    def test_objects_compare_shared_keys_only(self):
        first = ObjectType({"a": NUMBER, "b": STRING})
        second = ObjectType({"a": NUMBER, "c": BOOLEAN})
        assert similar(first, second)

    def test_objects_dissimilar_on_shared_key(self):
        first = ObjectType({"a": NUMBER})
        second = ObjectType({"a": STRING})
        assert not similar(first, second)

    def test_arrays_compare_shared_prefix(self):
        assert similar(ArrayType((NUMBER,)), ArrayType((NUMBER, STRING)))
        assert not similar(ArrayType((NUMBER,)), ArrayType((STRING,)))

    def test_nested_null_is_transparent(self):
        first = ObjectType({"a": NULL})
        second = ObjectType({"a": STRING})
        assert similar(first, second)

    @given(types)
    def test_reflexive(self, tau):
        assert similar(tau, tau)

    @given(types, types)
    def test_symmetric(self, first, second):
        assert similar(first, second) == similar(second, first)

    def test_not_transitive(self):
        # The paper notes similarity is not transitive: two objects
        # with a dissimilar field can both be similar to an object
        # omitting that field.
        left = ObjectType({"a": NUMBER, "shared": STRING})
        right = ObjectType({"a": STRING, "shared": STRING})
        middle = ObjectType({"shared": STRING})
        assert similar(left, middle)
        assert similar(middle, right)
        assert not similar(left, right)


class TestUnionTypes:
    def test_null_absorbed(self):
        assert union_types(NULL, NUMBER) is NUMBER
        assert union_types(NUMBER, NULL) is NUMBER

    def test_objects_union_keys(self):
        first = ObjectType({"a": NUMBER})
        second = ObjectType({"b": STRING})
        merged = union_types(first, second)
        assert set(merged.keys()) == {"a", "b"}

    def test_arrays_union_positions(self):
        merged = union_types(ArrayType((NUMBER,)), ArrayType((NUMBER, STRING)))
        assert merged == ArrayType((NUMBER, STRING))

    def test_dissimilar_raises(self):
        with pytest.raises(ValueError):
            union_types(NUMBER, STRING)

    @given(types, types)
    def test_subsumption(self, first, second):
        """If τ1 ≈ τ2 then union(τ1, τ2) ≈ both (§5.2's key property)."""
        if similar(first, second):
            merged = union_types(first, second)
            assert similar(merged, first)
            assert similar(merged, second)


class TestAccumulator:
    def test_empty_is_similar(self):
        acc = SimilarityAccumulator()
        assert acc.all_similar
        assert acc.maximal is None

    def test_detects_dissimilarity(self):
        acc = SimilarityAccumulator()
        acc.add(NUMBER)
        acc.add(STRING)
        assert not acc.all_similar

    def test_maximal_accumulates(self):
        acc = SimilarityAccumulator()
        acc.add(ObjectType({"a": NUMBER}))
        acc.add(ObjectType({"b": STRING}))
        assert acc.all_similar
        assert set(acc.maximal.keys()) == {"a", "b"}

    def test_stays_dissimilar(self):
        acc = SimilarityAccumulator()
        acc.add(NUMBER)
        acc.add(STRING)
        acc.add(NUMBER)
        assert not acc.all_similar

    @given(st.lists(types, max_size=8))
    def test_matches_pairwise_check(self, bag):
        """The linear scan agrees with the quadratic pairwise check —
        the subsumption argument made concrete."""
        acc = SimilarityAccumulator()
        for tau in bag:
            acc.add(tau)
        quadratic = all(
            similar(a, b) for i, a in enumerate(bag) for b in bag[i + 1:]
        )
        # The scan may only be *stricter* than pairwise in pathological
        # cases; for the accumulator we require exact agreement on the
        # positive side and the scan's verdict implies pairwise.
        if acc.all_similar:
            assert quadratic
        else:
            assert not quadratic or not acc.all_similar

    @given(st.lists(types, max_size=8), st.integers(0, 7))
    def test_merge_matches_sequential(self, bag, cut_at):
        """Splitting the bag and merging accumulators agrees with one
        sequential scan on the all_similar verdict."""
        cut = min(cut_at, len(bag))
        left = SimilarityAccumulator()
        for tau in bag[:cut]:
            left.add(tau)
        right = SimilarityAccumulator()
        for tau in bag[cut:]:
            right.add(tau)
        combined = left.merge(right)
        sequential = SimilarityAccumulator()
        for tau in bag:
            sequential.add(tau)
        assert combined.count == sequential.count == len(bag)
        if sequential.all_similar:
            # A partitioned scan can only be *more* permissive when the
            # dissimilar pair straddled the cut in a specific order;
            # subsumption guarantees the verdicts agree.
            assert combined.all_similar

    def test_all_pairwise_similar_helper(self):
        assert all_pairwise_similar([NUMBER, NUMBER, NULL])
        assert not all_pairwise_similar([NUMBER, STRING])
