"""The :class:`TypeBag` representations behind the merge fast path."""

from __future__ import annotations

import pytest

from repro.jsontypes import (
    CountedBag,
    ListBag,
    as_bag,
    counted_merge_enabled,
    set_counted_merge,
    type_of,
)


@pytest.fixture
def list_bags():
    old = set_counted_merge(False)
    try:
        yield
    finally:
        set_counted_merge(old)


TYPES = [type_of(v) for v in (1, "a", 1, {"k": 1}, 1, {"k": 2}, "a")]


class TestCountedBag:
    def test_counts_and_first_occurrence_order(self):
        bag = CountedBag.from_types(TYPES)
        assert bag.total == 7
        assert bag.distinct_count == 3
        assert list(bag.distinct()) == [
            type_of(1), type_of("a"), type_of({"k": 1})
        ]
        assert list(bag.counts()) == [3, 2, 2]
        assert dict(bag.items()) == {
            type_of(1): 3, type_of("a"): 2, type_of({"k": 1}): 2
        }

    def test_add_with_multiplicity(self):
        bag = CountedBag()
        bag.add(type_of(1), 5)
        bag.add(type_of(1))
        assert bag.total == 6
        assert bag.distinct_count == 1

    def test_spawn_and_subset(self):
        bag = CountedBag.from_types(TYPES)
        child = bag.spawn()
        assert isinstance(child, CountedBag)
        assert not child and child.total == 0
        sub = bag.subset([type_of(1), type_of("a")])
        assert sub.total == 5
        assert list(sub.counts()) == [3, 2]

    def test_truthiness(self):
        assert not CountedBag()
        assert CountedBag.from_types([type_of(1)])


class TestListBag:
    def test_preserves_duplicates(self):
        bag = ListBag.from_types(TYPES)
        assert bag.total == 7
        assert bag.distinct_count == 7
        assert list(bag.distinct()) == TYPES
        assert list(bag.counts()) == [1] * 7
        assert [count for _, count in bag.items()] == [1] * 7

    def test_subset_and_spawn(self):
        bag = ListBag.from_types(TYPES)
        sub = bag.subset([type_of("a"), type_of("a")])
        assert sub.total == 2
        assert isinstance(sub, ListBag)
        assert isinstance(bag.spawn(), ListBag)


class TestDispatch:
    def test_default_is_counted(self):
        assert counted_merge_enabled()
        assert isinstance(as_bag(TYPES), CountedBag)

    def test_flag_switches_representation(self, list_bags):
        assert not counted_merge_enabled()
        assert isinstance(as_bag(TYPES), ListBag)

    def test_existing_bag_passes_through(self):
        bag = ListBag.from_types(TYPES)
        assert as_bag(bag) is bag
        counted = CountedBag.from_types(TYPES)
        assert as_bag(counted) is counted

    def test_set_counted_merge_returns_previous(self):
        old = set_counted_merge(False)
        assert old is True
        assert set_counted_merge(old) is False
        assert counted_merge_enabled()
