"""Monoid and serialization laws of the discovery states.

Every algorithm's :class:`~repro.discovery.state.DiscoveryState` must
behave as a commutative monoid up to schema equivalence, and its wire
format must round-trip to an equal state.  These laws are what make
checkpoint/resume, executor tree-reduction, and partitioned streams
correct by construction:

* ``merge`` is associative (exactly: equal states, hence equal bytes);
* ``merge`` is commutative up to schema equivalence (structural
  equality after canonicalizing union-branch order, the only part of
  a schema that records observation order);
* ``empty()`` is the identity;
* absorbing a split stream into two states and merging equals
  absorbing the whole stream into one state (state equality);
* ``from_bytes(to_bytes(s)) == s`` with an equal synthesized schema;
* save → load → absorb-more ≡ one-shot over the concatenated input.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_dataset
from repro.discovery import (
    DiscoveryState,
    EntityStrategy,
    JxplainConfig,
    JxplainPipeline,
    JxplainState,
    KReduce,
    KReduceState,
    LReduce,
    LReduceState,
    load_state,
    save_state,
    state_for_algorithm,
)
from repro.errors import CheckpointError, EmptyInputError, StateCodecError
from repro.schema import to_json_schema
from tests.conftest import json_values

STATE_CLASSES = [LReduceState, KReduceState, JxplainState]

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=8)


def canon(schema) -> str:
    return json.dumps(to_json_schema(schema), sort_keys=True)


def _sort_unions(document):
    """Recursively canonicalize ``anyOf`` branch order.

    Union branches carry first-observation order (L-reduce top-level,
    K-reduce mixed-kind positions), which is the one part of a schema
    that legitimately differs between ``a.merge(b)`` and
    ``b.merge(a)``.  Branch order never affects admission, so sorting
    it away yields the equivalence the commutativity law is stated
    over.
    """
    if isinstance(document, dict):
        out = {key: _sort_unions(value) for key, value in document.items()}
        if "anyOf" in out:
            out["anyOf"] = sorted(
                out["anyOf"], key=lambda b: json.dumps(b, sort_keys=True)
            )
        return out
    if isinstance(document, list):
        return [_sort_unions(item) for item in document]
    return document


def equivalent(left, right) -> bool:
    """Schema equivalence: structural equality up to union-branch order."""
    return _sort_unions(to_json_schema(left)) == _sort_unions(
        to_json_schema(right)
    )


def filled(cls, values):
    state = cls.empty()
    state.absorb_many(values)
    return state


@pytest.mark.parametrize("cls", STATE_CLASSES)
class TestMonoidLaws:
    @given(values=value_lists, other=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_merge_commutes_up_to_schema_equivalence(
        self, cls, values, other
    ):
        left = filled(cls, values)
        right = filled(cls, other)
        assert equivalent(
            left.merge(right).synthesize(),
            right.merge(left).synthesize(),
        )

    @given(a=value_lists, b=value_lists, c=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_merge_is_associative(self, cls, a, b, c):
        """Associativity holds exactly — equal states, equal bytes."""
        sa, sb, sc = filled(cls, a), filled(cls, b), filled(cls, c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left == right
        assert left.to_bytes() == right.to_bytes()

    @given(values=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_empty_is_identity(self, cls, values):
        state = filled(cls, values)
        assert cls.empty().merge(state) == state
        assert state.merge(cls.empty()) == state

    @given(values=value_lists, split=st.integers(min_value=0, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_split_absorb_merge_equals_one_shot(self, cls, values, split):
        cut = min(split, len(values))
        merged = filled(cls, values[:cut]).merge(filled(cls, values[cut:]))
        assert merged == filled(cls, values)

    @given(values=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_bytes_round_trip(self, cls, values):
        state = filled(cls, values)
        revived = DiscoveryState.from_bytes(state.to_bytes())
        assert type(revived) is cls
        assert revived == state
        assert revived.record_count == state.record_count
        assert canon(revived.synthesize()) == canon(state.synthesize())
        # Determinism: equal states encode to identical bytes.
        assert revived.to_bytes() == state.to_bytes()

    @given(values=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_resume_then_append_equals_one_shot(
        self, cls, values, tmp_path_factory
    ):
        cut = len(values) // 2
        path = tmp_path_factory.mktemp("state") / "ckpt.bin"
        save_state(filled(cls, values[:cut]), path)
        resumed = load_state(path)
        resumed.absorb_many(values[cut:])
        one_shot = filled(cls, values)
        assert resumed == one_shot
        assert equivalent(resumed.synthesize(), one_shot.synthesize())

    def test_empty_state_cannot_synthesize(self, cls):
        with pytest.raises(EmptyInputError):
            cls.empty().synthesize()

    def test_merge_rejects_other_algorithms(self, cls):
        other_cls = next(c for c in STATE_CLASSES if c is not cls)
        with pytest.raises(ValueError):
            cls.empty().merge(other_cls.empty())


class TestSynthesisMatchesBatch:
    """States are sufficient statistics: synthesis == the batch run."""

    @given(values=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_lreduce(self, values):
        assert filled(LReduceState, values).synthesize() == LReduce().discover(
            values
        )

    @given(values=value_lists)
    @settings(max_examples=25, deadline=None)
    def test_kreduce(self, values):
        assert filled(KReduceState, values).synthesize() == KReduce().discover(
            values
        )

    def test_jxplain_matches_pipeline(self):
        records = make_dataset("github").generate(160, seed=7)
        state = filled(JxplainState, records)
        batch = JxplainPipeline().run(records).schema
        assert canon(state.synthesize()) == canon(batch)

    def test_jxplain_synthesize_result_carries_decisions(self):
        records = make_dataset("pharma").generate(80, seed=2)
        state = filled(JxplainState, records)
        schema, decisions, obj_p, arr_p = state.synthesize_result()
        result = JxplainPipeline().run(records)
        assert canon(schema) == canon(result.schema)
        assert decisions == result.decisions


class TestJxplainConfig:
    def test_merge_requires_equal_config(self):
        left = JxplainState(JxplainConfig())
        right = JxplainState(JxplainConfig().with_(entropy_threshold=0.25))
        left.absorb({"a": 1})
        right.absorb({"a": 1})
        with pytest.raises(ValueError):
            left.merge(right)

    def test_config_survives_round_trip(self):
        config = JxplainConfig().with_(
            entropy_threshold=0.75,
            similarity_depth=3,
            entity_strategy=EntityStrategy.BIMAX_NAIVE,
        )
        state = JxplainState(config)
        state.absorb({"a": 1})
        revived = DiscoveryState.from_bytes(state.to_bytes())
        assert revived.config == config


class TestStateForAlgorithm:
    def test_mapping(self):
        assert isinstance(state_for_algorithm("l-reduce"), LReduceState)
        assert isinstance(state_for_algorithm("k-reduce"), KReduceState)
        for name in ("jxplain", "jxplain-pipeline", "bimax-merge"):
            assert isinstance(state_for_algorithm(name), JxplainState)
        naive = state_for_algorithm("bimax-naive")
        assert naive.config.entity_strategy is EntityStrategy.BIMAX_NAIVE

    def test_reductions_take_no_config(self):
        for name in ("l-reduce", "k-reduce"):
            with pytest.raises(ValueError):
                state_for_algorithm(name, JxplainConfig())

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            state_for_algorithm("no-such-algorithm")


class TestCodecErrors:
    def _blob(self):
        state = KReduceState.empty()
        state.absorb({"a": 1})
        return state.to_bytes()

    def test_bad_magic(self):
        blob = self._blob()
        with pytest.raises(StateCodecError):
            DiscoveryState.from_bytes(b"XXXX" + blob[4:])

    def test_truncation(self):
        blob = self._blob()
        for cut in (5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(StateCodecError):
                DiscoveryState.from_bytes(blob[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(StateCodecError):
            DiscoveryState.from_bytes(self._blob() + b"\x00")

    def test_unknown_kind(self):
        from repro.discovery.codec import dumps_schema
        from repro.schema.nodes import NEVER

        with pytest.raises(StateCodecError):
            DiscoveryState.from_bytes(dumps_schema(NEVER))

    def test_checkpoint_errors(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_state(tmp_path / "missing.bin")
        corrupted = tmp_path / "corrupted.bin"
        corrupted.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            load_state(corrupted)
