"""Differential oracle: enrichment never changes the structural schema.

PR 8's contract is that ``--enrich`` is *strictly additive*: an
enriched run produces byte-identical structural output to an
unenriched run over the same input — for every algorithm, every
executor backend, every shard count, and across kill-and-resume.  The
oracle is **clone-strip**: round-trip the enriched state through the
codec, null out its enrichment sidecar, and demand the re-serialized
bytes equal the plain run's bytes.  Byte equality is state equality,
so this is the strongest form of "the structural schema is unchanged".
"""

from __future__ import annotations

import json

import pytest

from repro.discovery.pipeline import JxplainPipeline
from repro.discovery.state import load_state, state_for_algorithm
from repro.engine import (
    InjectedFault,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    clear_fault_plan,
    install_fault_plan,
)
from repro.engine.sharding import discover_sharded
from repro.io.jsonlines import read_jsonlines, write_jsonlines
from repro.schema import (
    annotate_json_schema,
    from_json_schema,
    to_json_schema,
)

ALGORITHMS = ("l-reduce", "k-reduce", "jxplain")
ENRICH = "sketches,unions"


def _rows(start: int, stop: int):
    rows = []
    for index in range(start, stop):
        kind = ("event", "user", "log")[index % 3]
        row = {
            "id": index,
            "kind": kind,
            "score": index * 0.5,
            "when": f"2021-06-{(index % 28) + 1:02d}",
        }
        if kind == "event":
            row["payload"] = {"depth": index % 5, "tags": [str(index % 4)]}
        if kind == "user":
            row["email"] = f"user{index}@example.com"
        if index % 7 == 0:
            row["extra"] = [index, str(index), None]
        rows.append(row)
    return rows


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    path = tmp_path_factory.mktemp("enriched") / "corpus.jsonl"
    write_jsonlines(path, _rows(0, 360))
    return path


@pytest.fixture(scope="module")
def plain_bytes(corpus):
    """Serial unenriched state bytes, one per algorithm — the oracle's
    right-hand side."""
    result = {}
    for algorithm in ALGORITHMS:
        state = state_for_algorithm(algorithm)
        for record in read_jsonlines(corpus):
            state.absorb(record)
        result[algorithm] = state.to_bytes()
    return result


@pytest.fixture(scope="module")
def enriched_bytes(corpus):
    """Serial enriched state bytes — the shard/backend invariant."""
    result = {}
    for algorithm in ALGORITHMS:
        state = state_for_algorithm(algorithm, enrich=ENRICH)
        for record in read_jsonlines(corpus):
            state.absorb(record)
        result[algorithm] = state.to_bytes()
    return result


def _strip(state_bytes: bytes, algorithm: str) -> bytes:
    """The clone-strip oracle: enriched bytes → structural-only bytes."""
    clone = type(state_for_algorithm(algorithm)).from_bytes(state_bytes)
    assert clone.enrichment is not None
    clone.enrichment = None
    return clone.to_bytes()


def _canonical(schema) -> str:
    return json.dumps(to_json_schema(schema), sort_keys=True)


class TestSerialOracle:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_strip_recovers_plain_bytes(
        self, algorithm, plain_bytes, enriched_bytes
    ):
        assert (
            _strip(enriched_bytes[algorithm], algorithm)
            == plain_bytes[algorithm]
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_synthesized_schema_is_unchanged(
        self, algorithm, plain_bytes, enriched_bytes
    ):
        empty = state_for_algorithm(algorithm)
        plain = type(empty).from_bytes(plain_bytes[algorithm])
        rich = type(empty).from_bytes(enriched_bytes[algorithm])
        assert _canonical(rich.synthesize()) == _canonical(
            plain.synthesize()
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_annotations_are_additive(self, algorithm, enriched_bytes):
        """``from_json_schema`` sees through the annotations: parsing
        the annotated document equals parsing the plain one."""
        empty = state_for_algorithm(algorithm)
        rich = type(empty).from_bytes(enriched_bytes[algorithm])
        document = to_json_schema(rich.synthesize())
        annotated = annotate_json_schema(document, rich.enrichment)
        assert annotated != document  # the sketches did annotate
        assert from_json_schema(annotated) == from_json_schema(document)


class TestShardedOracle:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_any_shard_count_matches_serial(
        self, corpus, algorithm, shards, plain_bytes, enriched_bytes
    ):
        result = discover_sharded(
            corpus,
            algorithm,
            executor=SerialExecutor(),
            shards=shards,
            enrich=ENRICH,
        )
        assert result.state.to_bytes() == enriched_bytes[algorithm]
        assert (
            _strip(result.state.to_bytes(), algorithm)
            == plain_bytes[algorithm]
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("backend", ("serial", "threads", "process"))
    def test_every_backend_matches_serial(
        self, corpus, algorithm, backend, plain_bytes, enriched_bytes
    ):
        executor = {
            "serial": SerialExecutor,
            "threads": lambda: ThreadExecutor(2),
            "process": lambda: ProcessExecutor(2),
        }[backend]()
        try:
            result = discover_sharded(
                corpus,
                algorithm,
                executor=executor,
                shards=3,
                enrich=ENRICH,
            )
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        assert result.state.to_bytes() == enriched_bytes[algorithm]
        assert (
            _strip(result.state.to_bytes(), algorithm)
            == plain_bytes[algorithm]
        )

    @pytest.mark.parametrize("ingest", ("fused", "classic"))
    def test_ingest_modes_agree(self, corpus, ingest, enriched_bytes):
        result = discover_sharded(
            corpus,
            "jxplain",
            executor=SerialExecutor(),
            shards=2,
            ingest=ingest,
            enrich=ENRICH,
        )
        assert result.state.to_bytes() == enriched_bytes["jxplain"]


class TestKillAndResume:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_killed_enriched_run_resumes_byte_identical(
        self, corpus, tmp_path, algorithm, plain_bytes, enriched_bytes
    ):
        """A worker death past its retries aborts the enriched run;
        the re-run reuses the surviving enriched shard checkpoints and
        still lands on the serial enriched bytes."""
        ckpt = tmp_path / f"{algorithm}.shards"
        install_fault_plan("shard-discover:2:raise:99")
        with pytest.raises(InjectedFault):
            discover_sharded(
                corpus,
                algorithm,
                executor=SerialExecutor(),
                shards=4,
                checkpoint_dir=ckpt,
                enrich=ENRICH,
            )
        survivors = sorted(p.name for p in ckpt.glob("shard-*.state"))
        assert survivors == ["shard-00000.state", "shard-00001.state"]
        # Surviving shard checkpoints carry their enrichment sidecar.
        for name in survivors:
            assert load_state(ckpt / name).enrichment is not None

        clear_fault_plan()
        rerun = discover_sharded(
            corpus,
            algorithm,
            executor=SerialExecutor(),
            shards=4,
            checkpoint_dir=ckpt,
            enrich=ENRICH,
        )
        assert rerun.resumed_shards == 2
        assert rerun.state.to_bytes() == enriched_bytes[algorithm]
        assert (
            _strip(rerun.state.to_bytes(), algorithm)
            == plain_bytes[algorithm]
        )


class TestCheckpointResumeAppend:
    def test_resume_append_equals_one_shot(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        both = tmp_path / "both.jsonl"
        write_jsonlines(first, _rows(0, 180))
        write_jsonlines(second, _rows(180, 360))
        write_jsonlines(both, _rows(0, 360))

        checkpoint = tmp_path / "pipeline.state"
        pipeline = JxplainPipeline(enrich=ENRICH)
        pipeline.run_file(first, checkpoint=checkpoint)
        resumed = pipeline.run_file(
            checkpoint=checkpoint, resume=True, append=[second]
        )

        one_shot = JxplainPipeline(enrich=ENRICH).run_file(both)
        assert resumed.state is not None
        assert resumed.state.enrichment is not None
        assert _canonical(resumed.schema) == _canonical(one_shot.schema)
        serial = state_for_algorithm("jxplain", enrich=ENRICH)
        for record in read_jsonlines(both):
            serial.absorb(record)
        assert resumed.state.to_bytes() == serial.to_bytes()

    def test_resumed_checkpoint_governs_enrichment(self, tmp_path):
        """Resume inherits the checkpoint's enrichment even when the
        resuming pipeline was built without any."""
        data = tmp_path / "data.jsonl"
        write_jsonlines(data, _rows(0, 60))
        checkpoint = tmp_path / "resume.state"
        JxplainPipeline(enrich=ENRICH).run_file(
            data, checkpoint=checkpoint
        )
        more = tmp_path / "more.jsonl"
        write_jsonlines(more, _rows(60, 120))
        resumed = JxplainPipeline().run_file(
            checkpoint=checkpoint, resume=True, append=[more]
        )
        assert resumed.state is not None
        assert resumed.state.enrichment is not None
        assert resumed.state.enrichment.options.unions
