"""Tests for JXPLAIN's recursive merge (Algorithm 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.config import EntityStrategy, FeatureMode, JxplainConfig
from repro.discovery.jxplain import (
    Jxplain,
    JxplainNaive,
    cluster_key_sets,
    jxplain_merge,
)
from repro.errors import EmptyInputError
from repro.jsontypes.types import type_of
from repro.schema.entropy import schema_entropy
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    Union,
    iter_branches,
)
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=8), min_size=1, max_size=8)


class TestFigure1:
    def test_example8_entity_split(self, login_serve_stream):
        """JXPLAIN prefers S1 (two entities) over S2 (one entity)."""
        schema = Jxplain().discover(login_serve_stream)
        entities = [
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple)
        ]
        assert len(entities) == 2
        key_sets = {entity.all_keys for entity in entities}
        assert frozenset({"ts", "event", "user"}) in key_sets
        assert frozenset({"ts", "event", "files"}) in key_sets

    def test_example1_mixtures_rejected(self, login_serve_stream):
        schema = Jxplain().discover(login_serve_stream)
        assert not schema.admits_value(
            {
                "ts": 1,
                "event": "x",
                "user": {"name": "q", "geo": [1.0, 2.0]},
                "files": ["z"],
            }
        )
        assert not schema.admits_value({"ts": 10, "event": "wat"})

    def test_example5_geo_pairs_stay_tuples(self, login_serve_stream):
        """Coordinates survive as [number, number], not [number]*."""
        schema = Jxplain().discover(login_serve_stream)
        login = next(
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple) and "user" in branch.all_keys
        )
        geo = login.field_schema("user").field_schema("geo")
        assert isinstance(geo, ArrayTuple)
        assert len(geo.elements) == 2
        assert not geo.admits_value([1.0])
        assert not geo.admits_value([1.0, 2.0, 3.0])

    def test_training_recall_is_perfect(self, login_serve_stream):
        schema = Jxplain().discover(login_serve_stream)
        for record in login_serve_stream:
            assert schema.admits_value(record)


class TestCollectionDetection:
    def test_example6_collection_object(self, collection_like_records):
        """Pharma-style maps become {*: number}* and generalize."""
        schema = Jxplain().discover(collection_like_records)
        counts = schema.field_schema("counts")
        assert isinstance(counts, ObjectCollection)
        # Generalizes to unseen drugs — the paper's recall win.
        assert schema.admits_value(
            {"npi": 1, "counts": {"NEVER_SEEN_DRUG": 5}}
        )

    def test_collection_detection_can_be_disabled(
        self, collection_like_records
    ):
        config = JxplainConfig(detect_object_collections=False)
        schema = jxplain_merge(
            [type_of(r) for r in collection_like_records], config
        )
        assert not schema.admits_value(
            {"npi": 1, "counts": {"NEVER_SEEN_DRUG": 5}}
        )

    def test_array_tuple_detection_can_be_disabled(self):
        values = [[1.0, 2.0] for _ in range(20)]
        config = JxplainConfig(detect_array_tuples=False)
        schema = jxplain_merge([type_of(v) for v in values], config)
        assert isinstance(schema, ArrayCollection)


class TestEntityStrategies:
    def _stream(self):
        records = []
        for index in range(30):
            if index % 2:
                records.append({"id": index, "a": 1, "b": 2})
            else:
                records.append({"id": index, "x": "s", "y": "t"})
        return records

    def test_single_strategy_one_entity(self):
        config = JxplainConfig(entity_strategy=EntityStrategy.SINGLE)
        schema = jxplain_merge(
            [type_of(r) for r in self._stream()], config
        )
        assert isinstance(schema, ObjectTuple)

    def test_exact_strategy_matches_lreduce_entities(self):
        config = JxplainConfig(entity_strategy=EntityStrategy.EXACT)
        schema = jxplain_merge(
            [type_of(r) for r in self._stream()], config
        )
        assert isinstance(schema, Union)
        assert len(schema.branches) == 2

    def test_kmeans_strategy(self):
        config = JxplainConfig(
            entity_strategy=EntityStrategy.KMEANS, kmeans_k=2
        )
        schema = jxplain_merge(
            [type_of(r) for r in self._stream()], config
        )
        for record in self._stream():
            assert schema.admits_value(record)

    def test_strategy_entropy_ordering(self):
        """EXACT <= BIMAX_MERGE <= SINGLE in admitted types, on a
        clean two-entity stream."""
        types = [type_of(r) for r in self._stream()]
        entropies = {}
        for strategy in (
            EntityStrategy.EXACT,
            EntityStrategy.BIMAX_MERGE,
            EntityStrategy.SINGLE,
        ):
            config = JxplainConfig(entity_strategy=strategy)
            entropies[strategy] = schema_entropy(
                jxplain_merge(types, config)
            )
        assert (
            entropies[EntityStrategy.EXACT]
            <= entropies[EntityStrategy.BIMAX_MERGE]
            <= entropies[EntityStrategy.SINGLE]
        )


class TestClusterKeySets:
    def test_single(self):
        clusters = cluster_key_sets(
            [frozenset("ab"), frozenset("cd")],
            JxplainConfig(entity_strategy=EntityStrategy.SINGLE),
        )
        assert len(clusters) == 1
        assert clusters[0].maximal == frozenset("abcd")

    def test_exact(self):
        clusters = cluster_key_sets(
            [frozenset("ab"), frozenset("cd"), frozenset("ab")],
            JxplainConfig(entity_strategy=EntityStrategy.EXACT),
        )
        assert len(clusters) == 2

    def test_kmeans_defaults_to_naive_count(self):
        clusters = cluster_key_sets(
            [frozenset("ab"), frozenset("xy")],
            JxplainConfig(entity_strategy=EntityStrategy.KMEANS),
        )
        assert 1 <= len(clusters) <= 2


class TestGeneralProperties:
    @given(value_lists)
    @settings(max_examples=50)
    def test_training_recall_perfect(self, values):
        schema = Jxplain().discover(values)
        for value in values:
            assert schema.admits_value(value)

    @given(value_lists)
    @settings(max_examples=50)
    def test_naive_variant_also_covers_training(self, values):
        schema = JxplainNaive().discover(values)
        for value in values:
            assert schema.admits_value(value)

    @given(value_lists)
    @settings(max_examples=30)
    def test_never_admits_more_than_kreduce_on_keys_mode(self, values):
        """With KEYS features and collections detection off, JXPLAIN
        with the SINGLE strategy reproduces K-reduce exactly."""
        from repro.discovery.kreduce import merge_k

        config = JxplainConfig(
            detect_object_collections=False,
            detect_array_tuples=False,
            entity_strategy=EntityStrategy.SINGLE,
            feature_mode=FeatureMode.KEYS,
        )
        types = [type_of(v) for v in values]
        assert jxplain_merge(types, config) == merge_k(types)

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyInputError):
            jxplain_merge([])

    def test_depth_guard(self):
        value = {"a": 1}
        for _ in range(20):
            value = {"nest": value}
        from repro.errors import RecursionDepthError

        config = JxplainConfig(max_depth=5)
        with pytest.raises(RecursionDepthError):
            jxplain_merge([type_of(value)], config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            JxplainConfig(entropy_threshold=-1).validate()
        with pytest.raises(ValueError):
            JxplainConfig(max_depth=0).validate()
        with pytest.raises(ValueError):
            JxplainConfig(
                entity_strategy=EntityStrategy.KMEANS, kmeans_k=-1
            ).validate()
