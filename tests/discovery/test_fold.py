"""Tests for pass ③ as an associative fold."""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.config import JxplainConfig
from repro.discovery.fold import DecidedFolder, FoldNode
from repro.discovery.pipeline import (
    FeatureExtractor,
    PipelineMerger,
    TupleShapes,
    build_partitioners,
)
from repro.discovery.stat_tree import StatTree, decide_collections
from repro.jsontypes.types import type_of
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=8)


def make_folder(types, config=None):
    """Run passes ① and ② and build the pass-③ folder."""
    config = config or JxplainConfig()
    tree = StatTree.from_types(types)
    decisions = decide_collections(tree, config)
    extractor = FeatureExtractor(decisions, config)
    shapes = TupleShapes()
    for tau in types:
        shapes.add(tau, decisions, extractor)
    object_partitioners, array_partitioners = build_partitioners(
        shapes, config
    )
    return (
        DecidedFolder(
            decisions,
            object_partitioners,
            array_partitioners,
            config,
            extractor=extractor,
        ),
        decisions,
        object_partitioners,
        array_partitioners,
        extractor,
    )


class TestFoldEquivalence:
    @given(value_lists)
    @settings(max_examples=50, deadline=None)
    def test_fold_equals_precomputed_merger(self, values):
        """The fold and the recursive merger agree when both use the
        same precomputed decisions and partitioners."""
        config = JxplainConfig()
        types = [type_of(v) for v in values]
        folder, decisions, op, ap, extractor = make_folder(types, config)
        folded = functools.reduce(
            folder.combine, (folder.lift(tau) for tau in types), FoldNode()
        )
        merger = PipelineMerger(config, decisions, op, ap, extractor)
        assert folder.schema(folded) == merger.merge(types)

    @given(value_lists, st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_combine_associative(self, values, cut_at):
        types = [type_of(v) for v in values]
        folder, *_ = make_folder(types)
        nodes = [folder.lift(tau) for tau in types]
        cut = min(cut_at, len(nodes))
        left = functools.reduce(folder.combine, nodes[:cut], FoldNode())
        right = functools.reduce(folder.combine, nodes[cut:], FoldNode())
        split = folder.schema(folder.combine(left, right))
        sequential = folder.schema(
            functools.reduce(folder.combine, nodes, FoldNode())
        )
        assert split == sequential

    @given(value_lists)
    @settings(max_examples=30, deadline=None)
    def test_combine_commutative(self, values):
        types = [type_of(v) for v in values]
        folder, *_ = make_folder(types)
        nodes = [folder.lift(tau) for tau in types]
        forward = functools.reduce(folder.combine, nodes, FoldNode())
        backward = functools.reduce(
            folder.combine, reversed(nodes), FoldNode()
        )
        assert folder.schema(forward) == folder.schema(backward)

    @given(value_lists)
    @settings(max_examples=30, deadline=None)
    def test_folded_schema_admits_training(self, values):
        types = [type_of(v) for v in values]
        folder, *_ = make_folder(types)
        node = functools.reduce(
            folder.combine, (folder.lift(tau) for tau in types), FoldNode()
        )
        schema = folder.schema(node)
        for tau in types:
            assert schema.admits_type(tau)

    def test_empty_fold_is_never(self):
        folder, *_ = make_folder([type_of({"a": 1})])
        from repro.schema.nodes import NEVER

        assert folder.schema(FoldNode()) is NEVER
        assert folder.schema(None) is NEVER
