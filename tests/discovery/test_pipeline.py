"""Tests for the staged three-pass pipeline (Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.jxplain import Jxplain
from repro.discovery.pipeline import JxplainPipeline
from repro.engine.dataset import LocalDataset
from repro.errors import EmptyInputError
from repro.jsontypes.types import type_of
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=8)


class TestPipeline:
    def test_matches_reference_on_figure1(self, login_serve_stream):
        reference = Jxplain().discover(login_serve_stream)
        staged = JxplainPipeline().discover(login_serve_stream)
        assert staged == reference

    def test_matches_reference_on_collections(
        self, collection_like_records
    ):
        reference = Jxplain().discover(collection_like_records)
        staged = JxplainPipeline().discover(collection_like_records)
        assert staged == reference

    @given(value_lists)
    @settings(max_examples=30, deadline=None)
    def test_training_recall_perfect(self, values):
        schema = JxplainPipeline().discover(values)
        for value in values:
            assert schema.admits_value(value)

    @given(value_lists)
    @settings(max_examples=20, deadline=None)
    def test_fold_and_merger_paths_agree(self, values):
        with_fold = JxplainPipeline(use_fold=True).discover(values)
        without_fold = JxplainPipeline(use_fold=False).discover(values)
        assert with_fold == without_fold

    @given(value_lists, st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_partition_count_irrelevant(self, values, partitions):
        one = JxplainPipeline(num_partitions=1).discover(values)
        many = JxplainPipeline(num_partitions=partitions).discover(values)
        assert one == many

    def test_result_diagnostics(self, login_serve_stream):
        result = JxplainPipeline().run(login_serve_stream)
        assert result.record_count == len(login_serve_stream)
        assert result.decisions
        assert (("user", "geo"),) not in result.collection_paths
        stages = [name for name, _, _ in result.timer.rows()]
        assert stages == [
            "parse",
            "pass1-collections",
            "pass2-entities",
            "pass3-synthesis",
        ]

    def test_accepts_prebuilt_dataset_of_types(self, login_serve_stream):
        types = [type_of(r) for r in login_serve_stream]
        dataset = LocalDataset.from_records(types, 3)
        result = JxplainPipeline().run(dataset)
        assert result.schema == Jxplain().discover(login_serve_stream)

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyInputError):
            JxplainPipeline().discover([])

    def test_multi_entity_github_shape(self):
        """Entities that differ only in nested payload split (PATHS
        feature mode), in both the reference and the pipeline."""
        records = []
        for index in range(40):
            if index % 2:
                records.append(
                    {"type": "A", "payload": {"x": 1, "y": 2}}
                )
            else:
                records.append(
                    {"type": "B", "payload": {"z": "s"}}
                )
        reference = Jxplain().discover(records)
        staged = JxplainPipeline().discover(records)
        assert staged == reference
        assert not staged.admits_value(
            {"type": "A", "payload": {"x": 1, "z": "s"}}
        )
