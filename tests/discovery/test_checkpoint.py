"""Checkpoint / resume / append, end to end.

The contract under test: a checkpointed run that is later resumed and
fed only the *new* records produces a byte-identical schema to a
one-shot run over the concatenated input — including after a simulated
crash (an injected fault that kills the re-run mid-pipeline), and
under the process executor backend.
"""

import json

import pytest

from repro.cli import main
from repro.datasets import make_dataset
from repro.discovery import JxplainPipeline, JxplainState, load_state
from repro.engine import InjectedFault, clear_fault_plan, install_fault_plan
from repro.engine.instrument import counters
from repro.errors import CheckpointError
from repro.io.jsonlines import write_jsonlines
from repro.schema import to_json_schema


def schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


@pytest.fixture
def corpus(tmp_path):
    """github records split into a base file and a 25% append file."""
    records = make_dataset("github").generate(160, seed=7)
    cut = 120
    base = tmp_path / "base.jsonl"
    extra = tmp_path / "extra.jsonl"
    full = tmp_path / "full.jsonl"
    write_jsonlines(base, records[:cut])
    write_jsonlines(extra, records[cut:])
    write_jsonlines(full, records)
    return base, extra, full


class TestPipelineCheckpoint:
    def test_checkpoint_written_and_counted(self, corpus, tmp_path):
        base, _, _ = corpus
        ckpt = tmp_path / "state.ckpt"
        written_before = counters.get("state.checkpoints_written")
        result = JxplainPipeline().run_file(base, checkpoint=ckpt)
        assert ckpt.exists()
        assert isinstance(result.state, JxplainState)
        assert result.state.record_count == 120
        assert counters.get("state.checkpoints_written") == written_before + 1
        # The file holds exactly the state the result carries.
        loaded_before = counters.get("state.checkpoints_loaded")
        assert load_state(ckpt) == result.state
        assert counters.get("state.checkpoints_loaded") == loaded_before + 1

    def test_resume_append_equals_one_shot(self, corpus, tmp_path):
        base, extra, full = corpus
        ckpt = tmp_path / "state.ckpt"
        JxplainPipeline().run_file(base, checkpoint=ckpt)
        resumed = JxplainPipeline().run_file(
            checkpoint=ckpt, resume=True, append=[extra]
        )
        one_shot = JxplainPipeline().run_file(full)
        assert schema_bytes(resumed.schema) == schema_bytes(one_shot.schema)
        assert resumed.record_count == 160
        # The checkpoint now holds the extended state: resuming again
        # with nothing new re-synthesizes the same schema (chaining).
        again = JxplainPipeline().run_file(checkpoint=ckpt, resume=True)
        assert schema_bytes(again.schema) == schema_bytes(one_shot.schema)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            JxplainPipeline().run_file(resume=True)

    def test_resume_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            JxplainPipeline().run_file(
                checkpoint=tmp_path / "missing.ckpt", resume=True
            )

    def test_resume_rejects_foreign_state(self, corpus, tmp_path):
        from repro.discovery import KReduceState, save_state

        base, _, _ = corpus
        ckpt = tmp_path / "kreduce.ckpt"
        state = KReduceState.empty()
        state.absorb({"a": 1})
        save_state(state, ckpt)
        with pytest.raises(CheckpointError):
            JxplainPipeline().run_file(checkpoint=ckpt, resume=True)

    def test_kill_and_resume_is_byte_identical(self, corpus, tmp_path):
        """A crashed re-run loses nothing that the checkpoint holds.

        Baseline: a clean one-shot run over the full corpus.  Then the
        'production' sequence: checkpoint the base run, have the naive
        full re-run die mid-pipeline (injected crash, no retry policy
        so it propagates like a real worker loss), and recover by
        resuming from the checkpoint with only the new file.
        """
        base, extra, full = corpus
        ckpt = tmp_path / "state.ckpt"
        baseline = schema_bytes(JxplainPipeline().run_file(full).schema)
        JxplainPipeline().run_file(base, checkpoint=ckpt)
        install_fault_plan("pass3-synthesis:0:raise")
        try:
            with pytest.raises(InjectedFault):
                JxplainPipeline().run_file(full)
        finally:
            clear_fault_plan()
        recovered = JxplainPipeline().run_file(
            checkpoint=ckpt, resume=True, append=[extra]
        )
        assert schema_bytes(recovered.schema) == baseline

    def test_merge_counter_ticks_during_state_build(self, corpus, tmp_path):
        base, _, _ = corpus
        before = counters.get("state.merges")
        JxplainPipeline(num_partitions=4).run_file(
            base, checkpoint=tmp_path / "state.ckpt"
        )
        assert counters.get("state.merges") > before


class TestCliCheckpoint:
    def test_cli_resume_append_equals_one_shot(
        self, corpus, tmp_path, capsys
    ):
        base, extra, full = corpus
        ckpt = tmp_path / "cli.ckpt"
        assert main(
            ["discover", str(base), "--checkpoint", str(ckpt),
             "--format", "json"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["discover", "--resume", "--checkpoint", str(ckpt),
             "--append", str(extra), "--format", "json"]
        ) == 0
        resumed_text = capsys.readouterr().out
        assert main(["discover", str(full), "--format", "json"]) == 0
        assert resumed_text == capsys.readouterr().out

    def test_cli_kreduce_checkpoint(self, corpus, tmp_path, capsys):
        base, extra, full = corpus
        ckpt = tmp_path / "k.ckpt"
        assert main(
            ["discover", str(base), "--algorithm", "k-reduce",
             "--checkpoint", str(ckpt), "--format", "json"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["discover", "--resume", "--checkpoint", str(ckpt),
             "--algorithm", "k-reduce", "--append", str(extra),
             "--format", "json"]
        ) == 0
        resumed_text = capsys.readouterr().out
        assert main(
            ["discover", str(full), "--algorithm", "k-reduce",
             "--format", "json"]
        ) == 0
        assert resumed_text == capsys.readouterr().out

    def test_cli_resume_without_checkpoint_fails(self, capsys):
        assert main(["discover", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_cli_discover_without_input_fails(self, capsys):
        assert main(["discover"]) == 2
        assert "input" in capsys.readouterr().err

    def test_cli_resume_rejects_overrides(self, corpus, tmp_path, capsys):
        base, _, _ = corpus
        ckpt = tmp_path / "cli.ckpt"
        assert main(["discover", str(base), "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(
            ["discover", "--resume", "--checkpoint", str(ckpt),
             "--threshold", "0.5"]
        ) == 2

    def test_cli_checkpoint_rejects_configured_reductions(
        self, corpus, tmp_path, capsys
    ):
        base, _, _ = corpus
        assert main(
            ["discover", str(base), "--algorithm", "l-reduce",
             "--checkpoint", str(tmp_path / "l.ckpt"),
             "--threshold", "0.5"]
        ) == 2
