"""Counted-bag merge fast path ≡ the duplicate-preserving list path.

The acceptance bar for the fast path is *schema identity*: with counted
bags (and interning) on, every discoverer must produce a schema equal
to the seed behaviour on every synthetic dataset.  K-reduce is
multiplicity-invariant outright; JXPLAIN's heuristics consume weighted
evidence whose statistics are pure functions of the final counts, so
the counted path is exact there too — these tests enforce that claim
end-to-end on all twelve sweep datasets.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainPipeline, KReduce
from repro.engine.instrument import counters
from repro.jsontypes import (
    clear_intern_table,
    set_counted_merge,
    set_interning,
    type_of,
)
from repro.jsontypes.similarity import set_similarity_cache

#: The twelve datasets of the Table 1/2 sweep (wikidata is the
#: separate Section 6 case study).
SWEEP_DATASETS = [
    "nyt",
    "synapse",
    "twitter",
    "github",
    "pharma",
    "yelp-merged",
    "yelp-business",
    "yelp-checkin",
    "yelp-photos",
    "yelp-review",
    "yelp-tip",
    "yelp-user",
]


@pytest.fixture
def baseline_mode():
    """Seed behaviour: list bags, no interning, no similarity cache."""
    old_bag = set_counted_merge(False)
    old_intern = set_interning(False)
    old_cache = set_similarity_cache(False)
    try:
        yield
    finally:
        set_counted_merge(old_bag)
        set_interning(old_intern)
        set_similarity_cache(old_cache)


def _schemas(records):
    return (
        KReduce().discover(records),
        Jxplain().discover(records),
        JxplainPipeline().run(records).schema,
    )


@pytest.mark.parametrize("name", SWEEP_DATASETS)
def test_counted_path_matches_list_path(name, baseline_mode):
    records = make_dataset(name).generate(150, seed=11)
    baseline = _schemas(records)

    set_counted_merge(True)
    set_interning(True)
    set_similarity_cache(True)
    clear_intern_table()
    optimized = _schemas(records)

    assert optimized[0] == baseline[0], "k-reduce diverged"
    assert optimized[1] == baseline[1], "jxplain merger diverged"
    assert optimized[2] == baseline[2], "jxplain pipeline diverged"


def test_counted_merge_counters_report_dedup():
    counters.reset()
    records = make_dataset("github").generate(300, seed=5)
    KReduce().discover(records)
    total = counters.get("kreduce.merge_total_types")
    distinct = counters.get("kreduce.merge_distinct_types")
    assert total >= 300
    assert 0 < distinct < total

    Jxplain().discover(records)
    assert counters.get("jxplain.merge_total_types") >= 300
    assert (
        counters.get("jxplain.merge_distinct_types")
        < counters.get("jxplain.merge_total_types")
    )


def test_merge_k_accepts_bag_and_iterable():
    from repro.discovery.kreduce import merge_k
    from repro.jsontypes import CountedBag

    values = [1, "x", 1, {"a": 2}]
    types = [type_of(v) for v in values]
    assert merge_k(types) == merge_k(CountedBag.from_types(types))
    assert merge_k(iter(types)) == merge_k(types)


def test_duplicate_heavy_corpus_identical_by_construction(baseline_mode):
    # A corpus that is 99% one shape: the counted path sees 4 distinct
    # types where the list path sees 400.
    records = [{"id": 7, "tags": ["a", "b"]}] * 396 + [
        {"id": 1},
        {"id": "s"},
        [1, 2],
        "plain",
    ]
    baseline = _schemas(records)
    set_counted_merge(True)
    set_interning(True)
    optimized = _schemas(records)
    assert optimized == baseline
