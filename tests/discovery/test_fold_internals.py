"""Unit tests for DecidedFolder's lift/combine/schema, piece by piece.

The property suite checks the fold laws wholesale; these tests verify
each accumulator type directly so a regression names the exact part.
"""

from repro.discovery.config import JxplainConfig
from repro.discovery.fold import DecidedFolder, FoldNode
from repro.discovery.jxplain import cluster_key_sets
from repro.discovery.stat_tree import StatTree, decide_collections
from repro.discovery.pipeline import (
    FeatureExtractor,
    TupleShapes,
    build_partitioners,
)
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import ROOT
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
)


def make_folder(records, config=None):
    config = config or JxplainConfig()
    types = [type_of(r) for r in records]
    tree = StatTree.from_types(types)
    decisions = decide_collections(tree, config)
    extractor = FeatureExtractor(decisions, config)
    shapes = TupleShapes()
    for tau in types:
        shapes.add(tau, decisions, extractor)
    object_partitioners, array_partitioners = build_partitioners(
        shapes, config
    )
    folder = DecidedFolder(
        decisions,
        object_partitioners,
        array_partitioners,
        config,
        extractor=extractor,
    )
    return folder, types


class TestLift:
    def test_primitive_lift(self):
        folder, types = make_folder([1, "x"])
        node = folder.lift(types[0])
        assert node.primitive_kinds == {Kind.NUMBER}
        assert not node.object_entities
        assert not node.array_entities

    def test_object_tuple_lift(self):
        folder, types = make_folder([{"a": 1, "b": "x"}] * 3)
        node = folder.lift(types[0])
        assert len(node.object_entities) == 1
        acc = next(iter(node.object_entities.values()))
        assert acc.required == {"a", "b"}
        assert set(acc.fields) == {"a", "b"}

    def test_object_collection_lift(self, collection_like_records):
        folder, types = make_folder(collection_like_records)
        node = folder.lift(types[0])
        acc = next(iter(node.object_entities.values()))
        counts_node = acc.fields["counts"]
        assert counts_node.object_collection is not None
        assert counts_node.object_collection.domain

    def test_array_tuple_lift(self, login_serve_stream):
        folder, types = make_folder(login_serve_stream)
        login = next(t for t in types if "user" in t.keys())
        node = folder.lift(login)
        acc = next(iter(node.object_entities.values()))
        geo = acc.fields["user"].object_entities
        user_acc = next(iter(geo.values()))
        geo_node = user_acc.fields["geo"]
        arr = next(iter(geo_node.array_entities.values()))
        assert arr.min_length == 2
        assert len(arr.positions) == 2


class TestCombine:
    def test_required_keys_intersect(self):
        folder, _ = make_folder([{"a": 1}, {"a": 1, "b": 2}])
        left = folder.lift(type_of({"a": 1}))
        right = folder.lift(type_of({"a": 1, "b": 2}))
        merged = folder.combine(left, right)
        acc = next(iter(merged.object_entities.values()))
        assert acc.required == {"a"}
        assert set(acc.fields) == {"a", "b"}

    def test_array_entity_min_length(self, login_serve_stream):
        records = [["x"], ["x", "y", "z"]]
        folder, types = make_folder(records)
        # Force tuple interpretation if lengths entropy <= 1 (2 lengths
        # at 50/50 gives ln 2 < 1, so these arrays are tuples).
        left = folder.lift(types[0])
        right = folder.lift(types[1])
        merged = folder.combine(left, right)
        if merged.array_entities:
            accs = list(merged.array_entities.values())
            assert min(acc.min_length for acc in accs) == 1

    def test_collection_domains_union(self, collection_like_records):
        folder, types = make_folder(collection_like_records)
        merged = folder.combine(
            folder.lift(types[0]), folder.lift(types[1])
        )
        acc = next(iter(merged.object_entities.values()))
        domain = acc.fields["counts"].object_collection.domain
        first_keys = set(types[0].field("counts").keys())
        second_keys = set(types[1].field("counts").keys())
        assert domain == first_keys | second_keys

    def test_combine_with_empty_is_identity(self, login_serve_stream):
        folder, types = make_folder(login_serve_stream)
        node = folder.lift(types[0])
        assert folder.schema(
            folder.combine(FoldNode(), node)
        ) == folder.schema(node)
        assert folder.schema(
            folder.combine(node, FoldNode())
        ) == folder.schema(node)


class TestSchemaExtraction:
    def test_empty_node_is_never(self, login_serve_stream):
        folder, _ = make_folder(login_serve_stream)
        assert folder.schema(FoldNode()) is NEVER

    def test_single_record_schema_is_exactish(self):
        folder, types = make_folder([{"a": 1, "b": [True, False]}])
        schema = folder.schema(folder.lift(types[0]))
        assert schema.admits_type(types[0])
        assert isinstance(schema, ObjectTuple)
        assert schema.required_keys == {"a", "b"}

    def test_collection_node_schema(self, collection_like_records):
        folder, types = make_folder(collection_like_records)
        node = FoldNode()
        for tau in types:
            node = folder.combine(node, folder.lift(tau))
        schema = folder.schema(node)
        counts = schema.field_schema("counts")
        assert isinstance(counts, ObjectCollection)

    def test_unknown_path_fallbacks(self):
        """Records at paths pass ① never saw fall back to the
        data-independent defaults (tuple objects, collection arrays)."""
        folder, _ = make_folder([{"a": 1}])
        surprise = type_of({"never_seen": [1, 2, 3]})
        schema = folder.schema(folder.lift(surprise))
        assert schema.admits_type(surprise)
        inner = schema.field_schema("never_seen")
        assert isinstance(inner, ArrayCollection)
