"""Differential oracles relating the three discovery algorithms.

Three cross-algorithm properties on hypothesis-generated record
streams:

* **Recall** — K-reduce, L-reduce, and JXPLAIN each admit every record
  they were discovered from, on *arbitrary* JSON-object streams.
* **Ambiguity reduction** — on entity-mixture streams (records drawn
  from a small set of overlapping templates, the regime the paper's
  corpora live in), the JXPLAIN schema's entropy never exceeds the
  K-reduce schema's.  The inequality is deliberately *not* asserted
  over fully arbitrary nested JSON: streams mixing ``{}`` with
  empty-array-heavy records can flip it (collection designation
  changes how the type space is counted), and the paper makes no
  universal claim there.
* **Backend determinism** — the staged pipeline yields byte-identical
  JSON Schema output under serial, thread, and process executors.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.discovery import JxplainPipeline, KReduce, LReduce, make_discoverer
from repro.engine import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.schema import schema_entropy, to_json_schema

from tests.conftest import json_keys, json_primitives


# ---------------------------------------------------------------------------
# Record strategies.
# ---------------------------------------------------------------------------

#: Arbitrary flat-ish objects: primitives plus one level of nesting.
shallow_values = st.one_of(
    json_primitives,
    st.lists(json_primitives, max_size=3),
    st.dictionaries(json_keys, json_primitives, max_size=3),
)

arbitrary_records = st.lists(
    st.dictionaries(json_keys, shallow_values, max_size=5),
    min_size=1,
    max_size=12,
)


def _event(event_id, size, with_size):
    record = {"id": event_id, "kind": "push", "repo": {"name": "r", "stars": size}}
    if with_size:
        record["size"] = size
    return record


def _profile(name, private, with_private, tags):
    record = {"name": name, "tags": tags}
    if with_private:
        record["private"] = private
    return record


#: Streams drawn from two overlapping entity templates with optional
#: fields — the shape of the paper's evaluation corpora, and the
#: regime where JXPLAIN's entropy advantage over K-reduce holds.
entity_mixture = st.lists(
    st.one_of(
        st.builds(
            _event,
            st.integers(0, 999),
            st.integers(0, 50),
            st.booleans(),
        ),
        st.builds(
            _profile,
            st.text(alphabet="abc", min_size=1, max_size=4),
            st.booleans(),
            st.booleans(),
            st.lists(st.text(alphabet="xyz", max_size=3), max_size=3),
        ),
    ),
    min_size=2,
    max_size=20,
)


def schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


# ---------------------------------------------------------------------------
# Oracle 1: recall — every algorithm admits every input record.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(records=arbitrary_records)
def test_every_algorithm_admits_every_input(records):
    for make in (KReduce, LReduce, lambda: make_discoverer("bimax-merge")):
        discoverer = make()
        schema = discoverer.discover(records)
        for record in records:
            assert schema.admits_value(record), (discoverer, record)


# ---------------------------------------------------------------------------
# Oracle 2: JXPLAIN is never more ambiguous than K-reduce on
# entity-mixture streams.
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(records=entity_mixture)
def test_jxplain_entropy_at_most_kreduce(records):
    jxplain = make_discoverer("bimax-merge").discover(records)
    kreduce = KReduce().discover(records)
    assert schema_entropy(jxplain) <= schema_entropy(kreduce) + 1e-9
    # Both still admit everything they saw.
    for record in records:
        assert jxplain.admits_value(record)
        assert kreduce.admits_value(record)


# ---------------------------------------------------------------------------
# Oracle 3: backend determinism.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def backends():
    executors = {
        "serial": SerialExecutor(),
        "threads": ThreadExecutor(2),
        "processes": ProcessExecutor(2),
    }
    yield executors
    for executor in executors.values():
        executor.close()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(records=entity_mixture)
def test_pipeline_deterministic_across_backends(backends, records):
    outputs = {}
    for name, executor in backends.items():
        result = JxplainPipeline(num_partitions=3, executor=executor).run(
            list(records)
        )
        outputs[name] = (schema_bytes(result.schema), result.record_count)
    assert outputs["threads"] == outputs["serial"]
    assert outputs["processes"] == outputs["serial"]


@settings(max_examples=25, deadline=None)
@given(records=arbitrary_records)
def test_discoverers_are_pure_functions_of_input(records):
    """Re-running any discoverer on the same stream reproduces the
    schema exactly — no hidden per-run state."""
    for make in (KReduce, LReduce, lambda: make_discoverer("bimax-merge")):
        first = make().discover(list(records))
        second = make().discover(list(records))
        assert schema_bytes(first) == schema_bytes(second)
