"""Differential oracles relating the three discovery algorithms.

Three cross-algorithm properties on hypothesis-generated record
streams:

* **Recall** — K-reduce, L-reduce, and JXPLAIN each admit every record
  they were discovered from, on *arbitrary* JSON-object streams.
* **Ambiguity reduction** — on entity-mixture streams (records drawn
  from a small set of overlapping templates, the regime the paper's
  corpora live in), the JXPLAIN schema's entropy never exceeds the
  K-reduce schema's.  The inequality is deliberately *not* asserted
  over fully arbitrary nested JSON: streams mixing ``{}`` with
  empty-array-heavy records can flip it (collection designation
  changes how the type space is counted), and the paper makes no
  universal claim there.
* **Backend determinism** — the staged pipeline yields byte-identical
  JSON Schema output under serial, thread, and process executors.
* **Fused ≡ classic ingestion** — streaming a file through the fused
  bytes→type reader produces the same ``DiscoveryState.to_bytes()`` as
  the classic parse-then-type fold, for every algorithm, on clean and
  malformed corpora alike, and across checkpoint/resume interleavings.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.discovery import JxplainPipeline, KReduce, LReduce, make_discoverer
from repro.discovery.state import load_state, save_state, state_for_algorithm
from repro.engine import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.io.fastpath import absorb_jsonlines_fused, ingest_jsonlines_fused
from repro.io.jsonlines import ingest_jsonlines
from repro.schema import schema_entropy, to_json_schema

from tests.conftest import json_keys, json_primitives


# ---------------------------------------------------------------------------
# Record strategies.
# ---------------------------------------------------------------------------

#: Arbitrary flat-ish objects: primitives plus one level of nesting.
shallow_values = st.one_of(
    json_primitives,
    st.lists(json_primitives, max_size=3),
    st.dictionaries(json_keys, json_primitives, max_size=3),
)

arbitrary_records = st.lists(
    st.dictionaries(json_keys, shallow_values, max_size=5),
    min_size=1,
    max_size=12,
)


def _event(event_id, size, with_size):
    record = {"id": event_id, "kind": "push", "repo": {"name": "r", "stars": size}}
    if with_size:
        record["size"] = size
    return record


def _profile(name, private, with_private, tags):
    record = {"name": name, "tags": tags}
    if with_private:
        record["private"] = private
    return record


#: Streams drawn from two overlapping entity templates with optional
#: fields — the shape of the paper's evaluation corpora, and the
#: regime where JXPLAIN's entropy advantage over K-reduce holds.
entity_mixture = st.lists(
    st.one_of(
        st.builds(
            _event,
            st.integers(0, 999),
            st.integers(0, 50),
            st.booleans(),
        ),
        st.builds(
            _profile,
            st.text(alphabet="abc", min_size=1, max_size=4),
            st.booleans(),
            st.booleans(),
            st.lists(st.text(alphabet="xyz", max_size=3), max_size=3),
        ),
    ),
    min_size=2,
    max_size=20,
)


def schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


# ---------------------------------------------------------------------------
# Oracle 1: recall — every algorithm admits every input record.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(records=arbitrary_records)
def test_every_algorithm_admits_every_input(records):
    for make in (KReduce, LReduce, lambda: make_discoverer("bimax-merge")):
        discoverer = make()
        schema = discoverer.discover(records)
        for record in records:
            assert schema.admits_value(record), (discoverer, record)


# ---------------------------------------------------------------------------
# Oracle 2: JXPLAIN is never more ambiguous than K-reduce on
# entity-mixture streams.
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(records=entity_mixture)
def test_jxplain_entropy_at_most_kreduce(records):
    jxplain = make_discoverer("bimax-merge").discover(records)
    kreduce = KReduce().discover(records)
    assert schema_entropy(jxplain) <= schema_entropy(kreduce) + 1e-9
    # Both still admit everything they saw.
    for record in records:
        assert jxplain.admits_value(record)
        assert kreduce.admits_value(record)


# ---------------------------------------------------------------------------
# Oracle 3: backend determinism.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def backends():
    executors = {
        "serial": SerialExecutor(),
        "threads": ThreadExecutor(2),
        "processes": ProcessExecutor(2),
    }
    yield executors
    for executor in executors.values():
        executor.close()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(records=entity_mixture)
def test_pipeline_deterministic_across_backends(backends, records):
    outputs = {}
    for name, executor in backends.items():
        result = JxplainPipeline(num_partitions=3, executor=executor).run(
            list(records)
        )
        outputs[name] = (schema_bytes(result.schema), result.record_count)
    assert outputs["threads"] == outputs["serial"]
    assert outputs["processes"] == outputs["serial"]


@settings(max_examples=25, deadline=None)
@given(records=arbitrary_records)
def test_discoverers_are_pure_functions_of_input(records):
    """Re-running any discoverer on the same stream reproduces the
    schema exactly — no hidden per-run state."""
    for make in (KReduce, LReduce, lambda: make_discoverer("bimax-merge")):
        first = make().discover(list(records))
        second = make().discover(list(records))
        assert schema_bytes(first) == schema_bytes(second)


# ---------------------------------------------------------------------------
# Oracle 4: fused ingestion is byte-identical to classic ingestion.
# ---------------------------------------------------------------------------

STATE_ALGORITHMS = ("l-reduce", "k-reduce", "jxplain")

#: Lines the fused reader must handle identically to the classic one:
#: garbage, almost-numbers, unterminated strings, raw control bytes,
#: invalid UTF-8, and blanks (which are tolerated, not errors).
malformed_lines = st.sampled_from(
    [
        b"not json at all",
        b'{"a": 00}',
        b'{"a": 1.}',
        b'{"unterminated": "...',
        b'{"nul": "\x00"}',
        b'{"bad-utf8": "\xff\xfe"}',
        b"[1, 2,]",
        b"{",
        b"",
        b"   ",
    ]
)


def _mixed_corpus():
    """Records interleaved with malformed byte lines."""
    good = st.builds(
        lambda record: json.dumps(record, separators=(",", ":")).encode(),
        st.dictionaries(json_keys, shallow_values, max_size=5),
    )
    return st.lists(st.one_of(good, malformed_lines), min_size=1, max_size=20)


def _write_lines(path, lines):
    with open(path, "wb") as handle:
        for line in lines:
            handle.write(line + b"\n")


def _report_key(report):
    return (
        report.total_lines,
        report.record_count,
        [
            (bad.line_number, bad.byte_offset, bad.error, bad.payload)
            for bad in report.bad_records
        ],
    )


@settings(max_examples=40, deadline=None)
@given(lines=_mixed_corpus())
def test_fused_state_bytes_equal_classic_on_malformed_corpora(
    lines, tmp_path_factory
):
    path = tmp_path_factory.mktemp("fused") / "corpus.jsonl"
    _write_lines(path, lines)
    records, classic_report = ingest_jsonlines(path, on_bad_record="collect")
    types, fused_report = ingest_jsonlines_fused(
        path, on_bad_record="collect"
    )
    assert _report_key(fused_report) == _report_key(classic_report)
    for algorithm in STATE_ALGORITHMS:
        classic_state = state_for_algorithm(algorithm, None)
        classic_state.absorb_many(records)
        fused_state = state_for_algorithm(algorithm, None)
        for tau in types:
            fused_state.absorb_type(tau)
        assert classic_state.to_bytes() == fused_state.to_bytes(), algorithm


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(lines=_mixed_corpus(), split=st.integers(0, 20), data=st.data())
def test_fused_checkpoint_resume_matches_one_shot(
    lines, split, data, tmp_path_factory
):
    """Absorb-checkpoint-reload-absorb under fused ingestion equals a
    one-shot classic fold over the concatenation."""
    algorithm = data.draw(st.sampled_from(STATE_ALGORITHMS))
    base = tmp_path_factory.mktemp("fused-resume")
    split = min(split, len(lines))
    first, second = lines[:split], lines[split:]
    _write_lines(base / "first.jsonl", first)
    _write_lines(base / "second.jsonl", second)
    _write_lines(base / "whole.jsonl", lines)

    oneshot = state_for_algorithm(algorithm, None)
    oneshot.absorb_many(
        ingest_jsonlines(base / "whole.jsonl", on_bad_record="skip")[0]
    )

    interleaved = state_for_algorithm(algorithm, None)
    absorb_jsonlines_fused(
        interleaved, base / "first.jsonl", on_bad_record="skip"
    )
    save_state(interleaved, base / "ckpt.bin")
    resumed = load_state(base / "ckpt.bin")
    absorb_jsonlines_fused(
        resumed, base / "second.jsonl", on_bad_record="skip"
    )
    assert resumed.to_bytes() == oneshot.to_bytes()
