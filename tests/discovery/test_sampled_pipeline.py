"""Tests for the sampled-heuristics pipeline (§4.2's mitigation)."""

import pytest

from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainPipeline
from repro.jsontypes.types import type_of
from repro.validation.validator import recall_against


class TestSampledPipeline:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            JxplainPipeline(heuristic_sample=0.0)
        with pytest.raises(ValueError):
            JxplainPipeline(heuristic_sample=1.5)

    def test_full_fraction_equals_unsampled(self, login_serve_stream):
        full = JxplainPipeline().discover(login_serve_stream)
        sampled = JxplainPipeline(heuristic_sample=1.0).discover(
            login_serve_stream
        )
        assert sampled == full

    def test_sampled_heuristics_still_find_collections(self):
        """The paper: 'even a 1% sample is often almost perfect' for
        entropy-based collection detection."""
        records = make_dataset("pharma").generate(600, seed=7)
        pipeline = JxplainPipeline(heuristic_sample=0.1, sample_seed=3)
        schema = pipeline.discover(records)
        assert schema.admits_value(
            {
                "npi": 1,
                "provider_variables": records[0]["provider_variables"],
                "cms_prescription_counts": {"UNSEEN DRUG": 11},
            }
        )

    def test_sampled_recall_close_to_full(self):
        records = make_dataset("synapse").generate(800, seed=8)
        test_types = [type_of(r) for r in records[-100:]]
        train = records[:-100]
        full = JxplainPipeline().discover(train)
        sampled = JxplainPipeline(
            heuristic_sample=0.2, sample_seed=1
        ).discover(train)
        full_recall = recall_against(full, test_types)
        sampled_recall = recall_against(sampled, test_types)
        assert sampled_recall >= full_recall - 0.15

    def test_pass3_covers_all_training_data(self):
        """Pass ③ runs on the full data even when the heuristics were
        sampled, so every training record is admitted."""
        records = make_dataset("github").generate(400, seed=9)
        schema = JxplainPipeline(
            heuristic_sample=0.25, sample_seed=2
        ).discover(records)
        for record in records:
            assert schema.admits_value(record)

    def test_record_count_reflects_full_data(self):
        records = make_dataset("figure1").generate(200, seed=1)
        result = JxplainPipeline(heuristic_sample=0.2).run(records)
        assert result.record_count == 200

    def test_deterministic_under_seed(self):
        records = make_dataset("yelp-merged").generate(400, seed=4)
        first = JxplainPipeline(
            heuristic_sample=0.3, sample_seed=11
        ).discover(records)
        second = JxplainPipeline(
            heuristic_sample=0.3, sample_seed=11
        ).discover(records)
        assert first == second

    def test_tiny_sample_falls_back_to_full(self):
        # A fraction so small the Bernoulli sample is empty must not
        # crash; the pipeline falls back to the full data.
        records = make_dataset("figure1").generate(20, seed=1)
        schema = JxplainPipeline(
            heuristic_sample=0.0001, sample_seed=5
        ).discover(records)
        for record in records:
            assert schema.admits_value(record)
