"""Tests for co-reference detection (§8 future work)."""

from repro.datasets import make_dataset
from repro.discovery import Jxplain
from repro.discovery.coref import (
    find_coreferences,
    unify_coreferences,
)
from repro.schema.nodes import (
    ArrayCollection,
    NUMBER_S,
    ObjectTuple,
    STRING_S,
    union,
)


def user_node(extra=None):
    required = {
        "id": NUMBER_S,
        "name": STRING_S,
        "screen_name": STRING_S,
    }
    optional = dict(extra or {})
    return ObjectTuple(required, optional)


class TestFindCoreferences:
    def test_exact_repetition_detected(self):
        schema = ObjectTuple(
            {
                "user": user_node(),
                "retweeted": ObjectTuple({"user": user_node()}),
            }
        )
        groups = find_coreferences(schema)
        assert len(groups) == 1
        group = groups[0]
        assert group.exact
        assert group.occurrences == 2
        assert ("user",) in group.paths
        assert ("retweeted", "user") in group.paths

    def test_near_equal_detected(self):
        schema = ObjectTuple(
            {
                "author": user_node(),
                "mention": user_node({"indices": NUMBER_S}),
            }
        )
        groups = find_coreferences(schema, jaccard_threshold=0.7)
        assert len(groups) == 1
        assert not groups[0].exact
        assert groups[0].unified.all_keys >= {
            "id", "name", "screen_name", "indices",
        }

    def test_small_objects_ignored(self):
        tiny = ObjectTuple({"a": NUMBER_S})
        schema = ObjectTuple({"x": tiny, "y": tiny})
        assert find_coreferences(schema) == []

    def test_conflicting_fields_block_near_grouping(self):
        first = ObjectTuple(
            {"id": NUMBER_S, "name": STRING_S, "rank": NUMBER_S}
        )
        second = ObjectTuple(
            {"id": NUMBER_S, "name": STRING_S, "rank": STRING_S}
        )
        schema = ObjectTuple({"a": first, "b": second})
        groups = find_coreferences(schema, jaccard_threshold=0.5)
        assert groups == []

    def test_inside_collections_and_unions(self):
        schema = union(
            ObjectTuple({"items": ArrayCollection(user_node())}),
            ObjectTuple({"owner": user_node()}),
        )
        groups = find_coreferences(schema)
        assert len(groups) == 1
        assert groups[0].occurrences == 2

    def test_twitter_user_coreference(self):
        """The paper's own example: tweet user objects recur under
        retweeted/quoted statuses and mentions."""
        records = make_dataset("twitter").generate(400, seed=3)
        schema = Jxplain().discover(records)
        groups = find_coreferences(schema)
        user_groups = [
            group
            for group in groups
            if "screen_name" in group.unified.all_keys
            and "followers_count" in group.unified.all_keys
        ]
        assert user_groups
        assert user_groups[0].occurrences >= 2

    def test_describe_is_readable(self):
        schema = ObjectTuple(
            {"a": user_node(), "b": user_node()}
        )
        text = find_coreferences(schema)[0].describe()
        assert "x2" in text
        assert "$.a" in text and "$.b" in text


class TestUnifyCoreferences:
    def test_near_group_unified(self):
        schema = ObjectTuple(
            {
                "author": user_node(),
                "mention": user_node({"indices": NUMBER_S}),
            }
        )
        unified, groups = unify_coreferences(schema, jaccard_threshold=0.7)
        assert groups
        author = unified.field_schema("author")
        mention = unified.field_schema("mention")
        assert author == mention
        assert "indices" in author.optional_keys

    def test_unification_preserves_recall(self):
        records = make_dataset("twitter").generate(300, seed=5)
        schema = Jxplain().discover(records)
        unified, _ = unify_coreferences(schema)
        for record in records:
            assert unified.admits_value(record)

    def test_exact_groups_left_alone(self):
        node = user_node()
        schema = ObjectTuple({"a": node, "b": node})
        unified, groups = unify_coreferences(schema)
        assert groups and groups[0].exact
        assert unified == schema
