"""Unit tests for the pipeline's internal accumulators.

The end-to-end equivalence tests in ``test_pipeline.py`` exercise the
whole; these pin down the parts: the feature extractor's caching and
pruning, the TupleShapes monoid, and partitioner compilation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.config import FeatureMode, JxplainConfig
from repro.discovery.pipeline import (
    FeatureExtractor,
    TupleShapes,
    build_partitioners,
)
from repro.discovery.stat_tree import StatTree, decide_collections
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import ROOT, STAR
from repro.jsontypes.types import type_of
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=8)


def _setup(records, config=None):
    config = config or JxplainConfig()
    types = [type_of(r) for r in records]
    tree = StatTree.from_types(
        types, similarity_depth=config.similarity_depth
    )
    decisions = decide_collections(tree, config)
    return types, decisions, FeatureExtractor(decisions, config)


class TestFeatureExtractor:
    def test_keys_mode_uses_top_level_keys(self):
        config = JxplainConfig(feature_mode=FeatureMode.KEYS)
        types, decisions, extractor = _setup(
            [{"a": 1, "b": {"c": 2}}], config
        )
        assert extractor.features(types[0], ROOT) == frozenset({"a", "b"})

    def test_paths_mode_includes_nested(self):
        types, decisions, extractor = _setup([{"a": 1, "b": {"c": 2}}])
        features = extractor.features(types[0], ROOT)
        assert ("b", "c") in features
        assert ("a",) in features

    def test_collection_paths_pruned(self, collection_like_records):
        types, decisions, extractor = _setup(collection_like_records)
        features = extractor.features(types[0], ROOT)
        assert ("counts",) in features
        # No per-drug path survives the pruning.
        assert all(
            len(path) == 1 for path in features
        ), sorted(features, key=repr)

    def test_relative_collections_offset(self, collection_like_records):
        # Wrap each record one level deeper and check base-relative
        # collection extraction.
        wrapped = [
            {"payload": record} for record in collection_like_records
        ]
        types, decisions, extractor = _setup(wrapped)
        relative = extractor.relative_collections(("payload",))
        assert ("counts",) in relative

    def test_relative_collections_cached(self, collection_like_records):
        types, decisions, extractor = _setup(collection_like_records)
        first = extractor.relative_collections(ROOT)
        second = extractor.relative_collections(ROOT)
        assert first is second  # cache hit returns the same object


class TestTupleShapes:
    def test_records_object_features_at_tuple_paths(
        self, login_serve_stream
    ):
        types, decisions, extractor = _setup(login_serve_stream)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        assert ROOT in shapes.object_features
        # Login records share one shape; serve records split by their
        # files tuple length (the fixture's lengths alternate 1 / 3),
        # giving three distinct feature vectors...
        assert len(shapes.object_features[ROOT]) == 3
        # ... which Bimax collapses back to the two entities, since the
        # short-serve shape is a subset of the long-serve shape.
        config = JxplainConfig()
        object_partitioners, _ = build_partitioners(shapes, config)
        assert object_partitioners[ROOT].entity_count == 2

    def test_records_array_lengths_for_tuple_arrays(
        self, login_serve_stream
    ):
        types, decisions, extractor = _setup(login_serve_stream)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        geo_path = ("user", "geo")
        assert shapes.array_lengths.get(geo_path) == {2}

    def test_collection_paths_not_recorded(self, collection_like_records):
        types, decisions, extractor = _setup(collection_like_records)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        assert ("counts",) not in shapes.object_features

    @given(value_lists, st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_sequential(self, values, cut_at):
        types, decisions, extractor = _setup(values)
        cut = min(cut_at, len(types))
        left = TupleShapes()
        for tau in types[:cut]:
            left.add(tau, decisions, extractor)
        right = TupleShapes()
        for tau in types[cut:]:
            right.add(tau, decisions, extractor)
        merged = left.merge(right)
        sequential = TupleShapes()
        for tau in types:
            sequential.add(tau, decisions, extractor)
        assert merged.object_features == sequential.object_features
        assert merged.array_lengths == sequential.array_lengths


class TestBuildPartitioners:
    def test_object_partitioner_assigns_training_shapes(
        self, login_serve_stream
    ):
        config = JxplainConfig()
        types, decisions, extractor = _setup(login_serve_stream, config)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        object_partitioners, array_partitioners = build_partitioners(
            shapes, config
        )
        partitioner = object_partitioners[ROOT]
        assert partitioner.entity_count == 2
        for tau in types:
            features = extractor.features(tau, ROOT)
            index = partitioner.assign(features)
            assert features <= partitioner.clusters[index].maximal

    def test_array_partitioner_from_lengths(self, login_serve_stream):
        config = JxplainConfig()
        types, decisions, extractor = _setup(login_serve_stream, config)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        _, array_partitioners = build_partitioners(shapes, config)
        geo = array_partitioners[("user", "geo")]
        # One length (2): a single position-set cluster.
        assert geo.entity_count == 1

    def test_deterministic_across_set_orderings(self, login_serve_stream):
        """Partitioner compilation must not depend on Python set
        iteration order (which varies with PYTHONHASHSEED)."""
        config = JxplainConfig()
        types, decisions, extractor = _setup(login_serve_stream, config)
        shapes = TupleShapes()
        for tau in types:
            shapes.add(tau, decisions, extractor)
        first, _ = build_partitioners(shapes, config)
        second, _ = build_partitioners(shapes, config)
        assert [c.maximal for c in first[ROOT].clusters] == [
            c.maximal for c in second[ROOT].clusters
        ]
