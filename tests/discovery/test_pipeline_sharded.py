"""``JxplainPipeline.run_file`` on the sharded byte-range path.

The pipeline's ``shards=`` mode must be indistinguishable from the
in-driver path in everything but speed: same state bytes as a serial
sequential scan, same schema, composing with checkpoint/resume/append,
and cleaning up its per-shard checkpoint directories once the merged
state is durable.
"""

from __future__ import annotations

import json

import pytest

from repro.discovery import JxplainPipeline
from repro.discovery.state import load_state, state_for_algorithm
from repro.io.fastpath import read_jsonlines_fused
from repro.io.jsonlines import write_jsonlines
from repro.schema import to_json_schema


def canonical(schema) -> str:
    return json.dumps(to_json_schema(schema), sort_keys=True)


def serial_bytes(*paths) -> bytes:
    state = state_for_algorithm("jxplain", None)
    for path in paths:
        for tau in read_jsonlines_fused(path):
            state.absorb_type(tau)
    return state.to_bytes()


@pytest.fixture
def corpus(tmp_path):
    rows = []
    for index in range(300):
        row = {"id": index, "event": ("get", "put")[index % 2]}
        if index % 3 == 0:
            row["detail"] = {"code": index % 11, "tags": [str(index % 5)]}
        rows.append(row)
    path = tmp_path / "corpus.jsonl"
    write_jsonlines(path, rows)
    return path


class TestShardedRunFile:
    @pytest.mark.parametrize("shards", ["auto", 3])
    def test_state_bytes_equal_serial_scan(self, corpus, tmp_path, shards):
        ckpt = tmp_path / "state.bin"
        result = JxplainPipeline(shards=shards).run_file(
            corpus, checkpoint=ckpt
        )
        assert result.state.to_bytes() == serial_bytes(corpus)
        assert load_state(ckpt).to_bytes() == serial_bytes(corpus)
        # Per-shard scratch dirs are gone once the merged state is
        # durable.
        assert not (tmp_path / "state.bin.shards").exists()

    def test_schema_matches_unsharded_pipeline(self, corpus):
        sharded = JxplainPipeline(shards=3).run_file(corpus)
        unsharded = JxplainPipeline().run_file(corpus)
        assert canonical(sharded.schema) == canonical(unsharded.schema)
        assert sharded.record_count == unsharded.record_count

    def test_resume_append_equals_concatenated_serial(
        self, corpus, tmp_path
    ):
        extra_rows = [
            {"id": 1000 + index, "event": "del", "flag": index % 2 == 0}
            for index in range(80)
        ]
        extra = tmp_path / "extra.jsonl"
        write_jsonlines(extra, extra_rows)
        ckpt = tmp_path / "state.bin"

        JxplainPipeline(shards=2).run_file(corpus, checkpoint=ckpt)
        result = JxplainPipeline(shards=2).run_file(
            checkpoint=ckpt, resume=True, append=[extra]
        )
        assert result.state.to_bytes() == serial_bytes(corpus, extra)
        assert load_state(ckpt).to_bytes() == serial_bytes(corpus, extra)

    def test_multi_file_fresh_run(self, corpus, tmp_path):
        second = tmp_path / "second.jsonl"
        write_jsonlines(
            second, [{"id": index, "z": [index]} for index in range(60)]
        )
        result = JxplainPipeline(shards=2, merge_fanin=4).run_file(
            corpus, append=[second]
        )
        assert result.state.to_bytes() == serial_bytes(corpus, second)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            JxplainPipeline(shards=0)
        with pytest.raises(ValueError):
            JxplainPipeline(shards="many")
