"""Tagged-union detection accuracy on the twelve labelled datasets.

The extractor's promise is twofold and both halves are pinned here on
``PAPER_DATASETS`` minus ``wikidata`` (whose generator targets the
scale experiments, not entity labels):

* **Positives** — github and synapse plant a literal ``type``
  discriminant; detection must recover exactly that key, cover the
  corpus, and cluster records into the ground-truth entities at least
  as well as the structural Bimax/GreedyMerge baselines.
* **Negatives** — the other ten datasets have no planted discriminant;
  detection must stay silent (an invented tag on e.g. yelp-review
  would fabricate entities the paper's corpora do not contain).

Every number is also pinned against a regenerable fixture so any
drift in the detector, the datasets, or the scoring shows up as a
diff, not a silent re-baseline.  Regenerate deliberately with::

    REPRO_REGEN_FIXTURES=1 python -m pytest tests/discovery/test_tagged_union_accuracy.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import PAPER_DATASETS
from repro.metrics.union_accuracy import (
    evaluate_tagged_union_detection,
    pair_scores,
)

DATASETS = tuple(name for name in PAPER_DATASETS if name != "wikidata")
POSITIVES = ("github", "synapse")
FIXTURE = Path(__file__).parent / "fixtures" / "tagged_union_accuracy.json"


@pytest.fixture(scope="module")
def results():
    """All twelve evaluations, computed once (JSON-normalized so they
    compare exactly against the round-tripped fixture)."""
    computed = {
        name: evaluate_tagged_union_detection(name) for name in DATASETS
    }
    normalized = json.loads(json.dumps(computed, sort_keys=True))
    if os.environ.get("REPRO_REGEN_FIXTURES"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(
            json.dumps(normalized, indent=2, sort_keys=True) + "\n"
        )
    return normalized


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


def _score(result: dict, method: str) -> dict:
    for score in result["scores"]:
        if score["method"] == method:
            return score
    raise AssertionError(f"no {method!r} score in {result['dataset']}")


def test_twelve_datasets():
    assert len(DATASETS) == 12
    assert "wikidata" not in DATASETS


@pytest.mark.parametrize("name", DATASETS)
def test_matches_pinned_fixture(results, pinned, name):
    assert results[name] == pinned[name]


@pytest.mark.parametrize("name", POSITIVES)
def test_planted_discriminant_is_recovered(results, name):
    discriminant = results[name]["discriminant"]
    assert discriminant is not None
    assert discriminant["key"] == "type"
    assert discriminant["coverage"] >= 0.99
    assert discriminant["predictiveness"] == 1.0


def test_github_branches_match_event_types(results):
    assert results["github"]["discriminant"]["branches"] == 10


def test_synapse_branches_match_message_types(results):
    assert results["synapse"]["discriminant"]["branches"] == 8


@pytest.mark.parametrize("name", POSITIVES)
def test_tagged_union_clusters_entities_perfectly(results, name):
    score = _score(results[name], "tagged-union")
    assert score["precision"] == 1.0
    assert score["recall"] == 1.0


@pytest.mark.parametrize("name", POSITIVES)
def test_tagged_union_at_least_matches_structural_baselines(results, name):
    union_f1 = _score(results[name], "tagged-union")["f1"]
    for baseline in ("bimax", "bimax-merge"):
        assert union_f1 >= _score(results[name], baseline)["f1"]


def test_tagged_union_strictly_beats_bimax_on_github(results):
    """The headline: 10 recovered event-type entities vs the 7
    structural clusters Bimax can tell apart."""
    union = _score(results["github"], "tagged-union")
    bimax = _score(results["github"], "bimax-merge")
    assert union["clusters"] == 10
    assert union["f1"] > bimax["f1"]


@pytest.mark.parametrize(
    "name", tuple(name for name in DATASETS if name not in POSITIVES)
)
def test_no_discriminant_invented_on_negatives(results, name):
    result = results[name]
    assert result["discriminant"] is None
    # The degenerate single-cluster fallback still gets scored.
    assert _score(result, "tagged-union")["clusters"] == 1
    assert _score(result, "tagged-union")["recall"] == 1.0


def test_every_dataset_reports_all_three_methods(results):
    for name in DATASETS:
        methods = [score["method"] for score in results[name]["scores"]]
        assert methods == ["tagged-union", "bimax", "bimax-merge"]
        assert results[name]["records"] == 600


class TestPairScores:
    def test_perfect_clustering(self):
        precision, recall = pair_scores([1, 1, 2, 2], ["a", "a", "b", "b"])
        assert (precision, recall) == (1.0, 1.0)

    def test_single_cluster_has_full_recall(self):
        precision, recall = pair_scores([0, 0, 0, 0], ["a", "a", "b", "b"])
        assert recall == 1.0
        assert precision == pytest.approx(2 / 6)

    def test_singletons_have_full_precision(self):
        precision, recall = pair_scores([1, 2, 3, 4], ["a", "a", "b", "b"])
        assert precision == 1.0
        assert recall == 0.0

    def test_degenerate_cases_score_one(self):
        assert pair_scores([], []) == (1.0, 1.0)
        assert pair_scores([1], ["a"]) == (1.0, 1.0)

    def test_length_mismatch_is_an_error(self):
        with pytest.raises(ValueError):
            pair_scores([1, 2], ["a"])
