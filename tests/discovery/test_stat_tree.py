"""Tests for the pass-① statistics tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.config import JxplainConfig
from repro.discovery.stat_tree import (
    StatTree,
    collection_paths,
    decide_collections,
    entropy_profile,
)
from repro.heuristics.collection import Designation
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import STAR
from repro.jsontypes.types import type_of
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=8), min_size=1, max_size=8)


class TestStatTree:
    def test_accumulates_evidence_per_path(self, login_serve_stream):
        tree = StatTree.from_types(
            [type_of(r) for r in login_serve_stream]
        )
        assert tree.object_evidence is not None
        assert tree.object_evidence.record_count == len(login_serve_stream)
        user = tree.children["user"]
        geo = user.children["geo"]
        assert geo.array_evidence.max_length == 2

    def test_primitive_kinds_counted(self):
        tree = StatTree.from_types([type_of(1), type_of("x"), type_of(2)])
        assert tree.primitive_kinds[Kind.NUMBER] == 2
        assert tree.primitive_kinds[Kind.STRING] == 1

    def test_rejects_non_types(self):
        with pytest.raises(TypeError):
            StatTree().add("not a type")

    @given(value_lists, st.integers(0, 7))
    @settings(max_examples=50)
    def test_merge_equals_sequential(self, values, cut_at):
        """Stat trees are a monoid: split-and-merge equals one scan."""
        types = [type_of(v) for v in values]
        cut = min(cut_at, len(types))
        left = StatTree.from_types(types[:cut])
        right = StatTree.from_types(types[cut:])
        merged = left.merge(right)
        sequential = StatTree.from_types(types)
        config = JxplainConfig()
        assert decide_collections(merged, config) == decide_collections(
            sequential, config
        )

    @given(value_lists)
    @settings(max_examples=30)
    def test_merge_commutative_on_decisions(self, values):
        types = [type_of(v) for v in values]
        half = len(types) // 2
        left = StatTree.from_types(types[:half])
        right = StatTree.from_types(types[half:])
        config = JxplainConfig()
        assert decide_collections(
            left.merge(right), config
        ) == decide_collections(right.merge(left), config)


class TestDecisions:
    def test_collection_children_merge_under_star(
        self, collection_like_records
    ):
        tree = StatTree.from_types(
            [type_of(r) for r in collection_like_records]
        )
        decisions = decide_collections(tree, JxplainConfig())
        assert decisions[(("counts",), Kind.OBJECT)] is Designation.COLLECTION
        # The merged star child gets its own decision entry only if it
        # is complex; here values are numbers, so no star entry exists.
        assert (("counts", STAR), Kind.OBJECT) not in decisions

    def test_root_decision_present(self, login_serve_stream):
        tree = StatTree.from_types(
            [type_of(r) for r in login_serve_stream]
        )
        decisions = decide_collections(tree, JxplainConfig())
        assert decisions[((), Kind.OBJECT)] is Designation.TUPLE

    def test_config_toggles_respected(self, collection_like_records):
        tree = StatTree.from_types(
            [type_of(r) for r in collection_like_records]
        )
        config = JxplainConfig(detect_object_collections=False)
        decisions = decide_collections(tree, config)
        assert decisions[(("counts",), Kind.OBJECT)] is Designation.TUPLE

    def test_collection_paths_helper(self, collection_like_records):
        tree = StatTree.from_types(
            [type_of(r) for r in collection_like_records]
        )
        decisions = decide_collections(tree, JxplainConfig())
        assert ("counts",) in collection_paths(decisions)

    def test_two_level_collection(self):
        """Synapse-style signatures: {server: {key: sig}}."""
        records = []
        for index in range(60):
            records.append(
                {
                    "sig": {
                        f"server{index % 17}.org": {
                            f"key{index % 13}": "abc"
                        }
                    }
                }
            )
        tree = StatTree.from_types([type_of(r) for r in records])
        decisions = decide_collections(tree, JxplainConfig())
        assert decisions[(("sig",), Kind.OBJECT)] is Designation.COLLECTION
        assert (
            decisions[(("sig", STAR), Kind.OBJECT)]
            is Designation.COLLECTION
        )


class TestEntropyProfile:
    def test_profile_reports_complex_paths(self, login_serve_stream):
        tree = StatTree.from_types(
            [type_of(r) for r in login_serve_stream]
        )
        # With the similar-only filter (Figure 4's caption) only paths
        # whose nested elements share a type remain: root objects mix
        # kinds across fields, so only the leaf collections survive.
        filtered = {
            (p.path, p.kind) for p in entropy_profile(tree)
        }
        assert (("user", "geo"), Kind.ARRAY) in filtered
        assert (("files",), Kind.ARRAY) in filtered
        assert ((), Kind.OBJECT) not in filtered
        unfiltered = {
            (p.path, p.kind)
            for p in entropy_profile(tree, similar_only=False)
        }
        assert ((), Kind.OBJECT) in unfiltered
        assert (("user",), Kind.OBJECT) in unfiltered

    def test_similar_only_filter(self):
        records = [{"mix": {"a": 1}}, {"mix": {"a": "s"}}]
        tree = StatTree.from_types([type_of(r) for r in records])
        filtered = entropy_profile(tree, similar_only=True)
        unfiltered = entropy_profile(tree, similar_only=False)
        filtered_paths = {p.path for p in filtered}
        unfiltered_paths = {p.path for p in unfiltered}
        assert ("mix",) not in filtered_paths
        assert ("mix",) in unfiltered_paths

    def test_bimodal_on_mixed_stream(self, login_serve_stream,
                                     collection_like_records):
        """Figure 4's claim: entropies cluster near zero (tuples) or
        well above the threshold (collections)."""
        records = login_serve_stream + collection_like_records
        tree = StatTree.from_types([type_of(r) for r in records])
        entropies = [p.entropy for p in entropy_profile(tree)]
        middle = [e for e in entropies if 0.5 < e < 1.5]
        extremes = [e for e in entropies if e <= 0.5 or e >= 1.5]
        assert len(extremes) > len(middle)
