"""Property tests for sharded discovery's byte-exactness guarantees.

The coordinator's contract has three layers, each pinned here:

* **Shard-count and fan-in invariance** (hypothesis, all three
  algorithms): shard ranges partition the file in order and state
  merge is byte-associative, so *any* shard count with *any* merge
  fan-in produces bytes identical to a serial sequential scan.
* **Merge-order invariance**: merging partials in a permuted order
  always preserves the record bag as a multiset, and for K-reduce and
  JXPLAIN the canonical schema too.  L-reduce's synthesis is a fold
  over the bag in first-occurrence order, so permuting the merge can
  legitimately reshape its union nesting — which is exactly why the
  coordinator always merges in shard-index order (making even
  L-reduce byte-identical to serial; see the invariance tests above).
* **Worker death**: a run killed mid-flight by a PR-3 fault plan
  resumes from its per-shard checkpoints to byte-identical output.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.discovery.state import DiscoveryState, state_for_algorithm
from repro.engine import (
    InjectedFault,
    SerialExecutor,
    clear_fault_plan,
    counters,
    install_fault_plan,
)
from repro.engine.sharding import discover_sharded, plan_shards, _run_shard
from repro.engine.sharding import ShardTask
from repro.io.fastpath import read_jsonlines_fused
from repro.io.jsonlines import write_jsonlines
from repro.schema import to_json_schema


def _canonical(schema) -> str:
    import json

    return json.dumps(to_json_schema(schema), sort_keys=True)

ALGORITHMS = ("l-reduce", "k-reduce", "jxplain")


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    rows = []
    for index in range(360):
        row = {"id": index, "kind": ("event", "user", "log")[index % 3]}
        if index % 3 == 0:
            row["payload"] = {"depth": index % 5, "tags": [str(index % 4)]}
        if index % 4 == 0:
            row["extra"] = [index, str(index)]
        rows.append(row)
    path = tmp_path_factory.mktemp("props") / "corpus.jsonl"
    write_jsonlines(path, rows)
    return path


@pytest.fixture(scope="module")
def baselines(corpus):
    """Serial sequential-scan state bytes, one per algorithm."""
    result = {}
    for algorithm in ALGORITHMS:
        state = state_for_algorithm(algorithm, None)
        for tau in read_jsonlines_fused(corpus):
            state.absorb_type(tau)
        result[algorithm] = state.to_bytes()
    return result


@pytest.fixture(scope="module")
def partials(corpus):
    """Each shard's serialized partial, per algorithm, for 5 shards."""
    plan = plan_shards(corpus, 5, workers=2)
    by_algorithm = {}
    for algorithm in ALGORITHMS:
        by_algorithm[algorithm] = [
            _run_shard(
                ShardTask(
                    index=index,
                    path=plan.path,
                    start=start,
                    end=end,
                    algorithm=algorithm,
                )
            ).state_bytes
            for index, (start, end) in enumerate(plan.ranges)
        ]
    return by_algorithm


class TestShardAndFaninInvariance:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @given(shards=st.integers(2, 7), fanin=st.integers(2, 5))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_bytes_equal_serial_scan(
        self, corpus, baselines, algorithm, shards, fanin
    ):
        result = discover_sharded(
            corpus, algorithm, shards=shards, merge_fanin=fanin
        )
        assert result.state.to_bytes() == baselines[algorithm]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @given(fanin=st.integers(2, 6))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_manual_tree_merge_is_fanin_invariant(
        self, baselines, partials, algorithm, fanin
    ):
        """Re-grouping the same in-order partials under any fan-in is
        the in-order left fold — i.e. the serial scan."""
        level = [
            DiscoveryState.from_bytes(blob) for blob in partials[algorithm]
        ]
        while len(level) > 1:
            level = [
                _fold(level[start:start + fanin])
                for start in range(0, len(level), fanin)
            ]
        assert level[0].to_bytes() == baselines[algorithm]


def _fold(states):
    acc = states[0]
    for state in states[1:]:
        acc = acc.merge(state)
    return acc


class TestMergeOrderInvariance:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @given(order=st.permutations(list(range(5))))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_permuted_merge_preserves_the_bag(
        self, baselines, partials, algorithm, order
    ):
        permuted = _fold(
            [
                DiscoveryState.from_bytes(partials[algorithm][index])
                for index in order
            ]
        )
        reference = DiscoveryState.from_bytes(baselines[algorithm])
        assert permuted.record_count == reference.record_count
        if hasattr(permuted, "bag"):
            assert dict(permuted.bag.items()) == dict(
                reference.bag.items()
            )

    @pytest.mark.parametrize("algorithm", ["k-reduce", "jxplain"])
    @given(order=st.permutations(list(range(5))))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_permuted_merge_is_schema_identical(
        self, baselines, partials, algorithm, order
    ):
        """K-reduce and JXPLAIN synthesize order-independently, so any
        merge order lands on the same canonical schema.  (L-reduce
        does not — its union fold is order-sensitive, which the
        coordinator neutralizes by merging in shard-index order.)"""
        permuted = _fold(
            [
                DiscoveryState.from_bytes(partials[algorithm][index])
                for index in order
            ]
        )
        reference = DiscoveryState.from_bytes(baselines[algorithm])
        assert _canonical(permuted.synthesize()) == _canonical(
            reference.synthesize()
        )


class TestWorkerDeathResume:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_killed_run_resumes_byte_identical(
        self, corpus, baselines, tmp_path, algorithm
    ):
        """A shard task that dies past its retries aborts the run, but
        completed shards' checkpoints survive; the re-run reuses them
        and lands on the serial bytes."""
        ckpt = tmp_path / f"{algorithm}.shards"
        install_fault_plan("shard-discover:2:raise:99")
        before = counters.snapshot()
        with pytest.raises(InjectedFault):
            discover_sharded(
                corpus,
                algorithm,
                executor=SerialExecutor(),
                shards=4,
                checkpoint_dir=ckpt,
            )
        assert (
            counters.get("faults.injected_raise")
            - before.get("faults.injected_raise", 0)
            >= 1
        )
        survivors = sorted(p.name for p in ckpt.glob("shard-*.state"))
        assert survivors == ["shard-00000.state", "shard-00001.state"]

        clear_fault_plan()
        rerun = discover_sharded(
            corpus,
            algorithm,
            executor=SerialExecutor(),
            shards=4,
            checkpoint_dir=ckpt,
        )
        assert rerun.resumed_shards == 2
        assert rerun.state.to_bytes() == baselines[algorithm]
        assert rerun.report.record_count == 360

    def test_retry_recovers_transient_worker_death_in_place(self, corpus):
        """A fault that clears within the retry budget never surfaces:
        the supervised run completes and matches serial bytes."""
        from repro.engine import RetryPolicy, ThreadExecutor

        install_fault_plan("shard-discover:1:raise:1")
        executor = ThreadExecutor(
            2, retry=RetryPolicy(max_retries=2, backoff_base=0.001)
        )
        try:
            result = discover_sharded(
                corpus, "jxplain", executor=executor, shards=4
            )
        finally:
            executor.close()
        state = state_for_algorithm("jxplain", None)
        for tau in read_jsonlines_fused(corpus):
            state.absorb_type(tau)
        assert result.state.to_bytes() == state.to_bytes()
