"""Tests for the L-reduction (naive discovery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.lreduce import LReduce, merge_naive
from repro.errors import EmptyInputError
from repro.jsontypes.types import type_of
from tests.conftest import json_values


class TestMergeNaive:
    def test_admits_exactly_the_inputs(self, figure1_records):
        types = [type_of(record) for record in figure1_records]
        schema = merge_naive(types)
        for record in figure1_records:
            assert schema.admits_value(record)
        # Example 1's invalid mixtures are rejected.
        assert not schema.admits_value({"ts": 10, "event": "wat"})

    def test_rejects_unseen_variations(self):
        schema = merge_naive([type_of({"a": 1})])
        assert not schema.admits_value({"a": 1, "b": 2})
        assert not schema.admits_value({})
        assert not schema.admits_value({"a": "str"})

    def test_rejects_unseen_array_lengths(self):
        schema = merge_naive([type_of(["x", "y"])])
        assert not schema.admits_value(["x"])
        assert not schema.admits_value(["x", "y", "z"])

    def test_duplicates_deduplicate(self):
        types = [type_of({"a": 1}), type_of({"a": 2.0}), type_of({"a": 3})]
        schema = merge_naive(types)
        # All three values share one type; the schema is a single node.
        from repro.schema.nodes import ObjectTuple

        assert isinstance(schema, ObjectTuple)

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyInputError):
            merge_naive([])
        with pytest.raises(EmptyInputError):
            LReduce().discover([])

    @given(st.lists(json_values(max_leaves=8), min_size=1, max_size=6))
    def test_perfect_precision_and_recall_on_training(self, values):
        """L-reduction admits every training record (recall 1.0 on the
        training set) and nothing structurally new."""
        schema = LReduce().discover(values)
        for value in values:
            assert schema.admits_value(value)

    @given(st.lists(json_values(max_leaves=8), min_size=1, max_size=6))
    def test_order_independent(self, values):
        forward = merge_naive([type_of(v) for v in values])
        backward = merge_naive([type_of(v) for v in reversed(values)])
        assert forward == backward
