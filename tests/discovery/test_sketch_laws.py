"""Property tests for the enrichment sketch monoids (PR 8).

Three layers of law, each load-bearing for the sharded/checkpointed
pipeline:

* **Monoid laws** per sketch — identity, associativity, commutativity,
  and absorb/merge agreement (absorbing a concatenation equals merging
  independently-absorbed halves).  These are what make enrichment safe
  to carry through any shard count, merge fan-in, and resume order.
* **Byte determinism** — equal sketches serialize to equal codec
  bytes, and ``from_bytes(to_bytes(s)) == s``.  State equality *is*
  byte equality everywhere else in the repo; the sidecar must not
  weaken that.
* **Saturation** as an absorbing element of the discriminant-evidence
  monoid: once a key's value table overflows its cap, every grouping
  of the same observations saturates identically.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery.sketches import (
    BloomMembershipSketch,
    DiscriminantAccumulator,
    EnrichmentOptions,
    EnrichmentState,
    HLLCardinalitySketch,
    KeyEvidence,
    MinMaxSketch,
    PathSketches,
    SKETCH_CLASSES,
    StringFormatSketch,
    parse_enrich_spec,
    record_shape,
    scalar_fingerprint,
    scalar_from_key,
    scalar_key,
)
from repro.discovery.state import state_for_algorithm
from tests.conftest import json_values

ALGORITHMS = ("l-reduce", "k-reduce", "jxplain")

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=20),
    st.sampled_from(
        [
            "2021-06-01T12:30:00Z",
            "2021-06-01",
            "12:30:00",
            "a3bb189e-8bf9-3888-9912-ace4e6543002",
            "user@example.com",
            "https://example.com/x",
        ]
    ),
)

scalar_lists = st.lists(scalars, max_size=30)


def _build(cls, values):
    sketch = cls()
    for value in values:
        sketch.absorb(value)
    return sketch


@pytest.mark.parametrize("cls", SKETCH_CLASSES)
class TestSketchMonoidLaws:
    @given(values=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_identity(self, cls, values):
        sketch = _build(cls, values)
        assert cls.empty().merge(sketch) == sketch
        assert sketch.merge(cls.empty()) == sketch

    @given(a=scalar_lists, b=scalar_lists, c=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_associative_and_commutative(self, cls, a, b, c):
        sa, sb, sc = (_build(cls, chunk) for chunk in (a, b, c))
        assert sa.merge(sb).merge(sc) == sa.merge(sb.merge(sc))
        assert sa.merge(sb) == sb.merge(sa)

    @given(a=scalar_lists, b=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_absorb_agrees_with_merge(self, cls, a, b):
        assert _build(cls, a + b) == _build(cls, a).merge(_build(cls, b))

    @given(values=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_order_invariance(self, cls, values):
        assert _build(cls, values) == _build(cls, list(reversed(values)))

    @given(values=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_codec_round_trip(self, cls, values):
        sketch = _build(cls, values)
        decoded = type(sketch).from_bytes(sketch.to_bytes())
        assert decoded == sketch
        # Equal sketches serialize to equal bytes — byte equality IS
        # state equality, in both directions.
        assert decoded.to_bytes() == sketch.to_bytes()


class TestSketchSemantics:
    @given(values=st.lists(
        st.one_of(
            st.integers(min_value=-(2**70), max_value=2**70),
            st.floats(allow_nan=True, allow_infinity=True),
        ),
        min_size=1,
        max_size=30,
    ))
    @settings(max_examples=60, deadline=None)
    def test_minmax_bounds(self, values):
        sketch = _build(MinMaxSketch, values)
        # Mirror the documented canonicalization: NaN skipped, ints
        # beyond the svarint range collapse to float at absorb.
        kept = []
        for value in values:
            if isinstance(value, float):
                if not math.isnan(value):
                    kept.append(value)
            elif not -(2**62 - 1) <= value <= 2**62 - 1:
                kept.append(float(value))
            else:
                kept.append(value)
        if not kept:
            assert sketch.count == 0
            return
        assert sketch.count == len(kept)
        assert sketch.minimum == min(kept)
        assert sketch.maximum == max(kept)

    @given(values=scalar_lists)
    @settings(max_examples=60, deadline=None)
    def test_bloom_has_no_false_negatives(self, values):
        sketch = _build(BloomMembershipSketch, values)
        for value in values:
            assert sketch.might_contain(value)

    def test_hll_estimate_tracks_distinct_count(self):
        sketch = HLLCardinalitySketch(precision=10)
        for index in range(5000):
            sketch.absorb(f"value-{index}")
        # Relative error ~1.04/sqrt(1024) ≈ 3.3%; allow 4 sigma.
        assert abs(sketch.estimate() - 5000) / 5000 < 0.13

    def test_format_dominance_requires_unanimity(self):
        sketch = _build(StringFormatSketch, ["2021-06-01", "2021-06-02"])
        assert sketch.dominant() == "date"
        sketch.absorb("not a date")
        assert sketch.dominant() is None

    @given(value=scalars)
    @settings(max_examples=80, deadline=None)
    def test_int_valued_floats_share_fingerprints(self, value):
        if isinstance(value, float) and value.is_integer():
            assert scalar_fingerprint(value) == scalar_fingerprint(
                int(value)
            )

    @given(value=st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.text(max_size=20),
    ))
    @settings(max_examples=60, deadline=None)
    def test_scalar_key_round_trips(self, value):
        assert scalar_from_key(scalar_key(value)) == value
        # bool/int never collide despite True == 1.
        assert scalar_key(True) != scalar_key(1)
        assert scalar_key(False) != scalar_key(0)


records = st.dictionaries(
    st.sampled_from(["type", "kind", "id", "name", "x", "payload"]),
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-100, max_value=100),
        st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]),
        st.dictionaries(
            st.sampled_from(["u", "v"]),
            st.integers(min_value=0, max_value=3),
            max_size=2,
        ),
    ),
    max_size=4,
)
record_lists = st.lists(records, max_size=25)

#: A tiny cap so hypothesis actually reaches saturation.
TINY = EnrichmentOptions(
    sketches=False, unions=True, union_value_cap=2, union_string_cap=4
)


class TestDiscriminantEvidence:
    @given(a=record_lists, b=record_lists, c=record_lists)
    @settings(max_examples=80, deadline=None)
    def test_saturation_is_associative_and_commutative(self, a, b, c):
        def build(chunks):
            acc = DiscriminantAccumulator(
                TINY.union_value_cap, TINY.union_string_cap
            )
            for chunk in chunks:
                for record in chunk:
                    acc.observe(record)
            return acc

        def merged(*accs):
            result = accs[0]
            for acc in accs[1:]:
                result = result.merge(acc)
            return result

        left = merged(merged(build([a]), build([b])), build([c]))
        right = merged(build([a]), merged(build([b]), build([c])))
        assert left == right
        assert left == build([a, b, c])
        assert merged(build([a]), build([b])) == merged(
            build([b]), build([a])
        )

    def test_saturated_table_absorbs_everything(self):
        evidence = KeyEvidence()
        shape = ("k",)
        for index in range(TINY.union_value_cap + 1):
            evidence.observe(index, shape, TINY.union_value_cap)
        assert evidence.saturated
        assert not evidence.values
        # Saturation is absorbing under merge, in either order.
        fresh = KeyEvidence()
        fresh.observe(1, shape, TINY.union_value_cap)
        assert evidence.merge(fresh, TINY.union_value_cap).saturated
        assert fresh.merge(evidence, TINY.union_value_cap).saturated

    @given(record=records)
    @settings(max_examples=60, deadline=None)
    def test_record_shape_is_depth_two_and_sorted(self, record):
        shape = record_shape(record)
        assert shape == tuple(sorted(set(shape)))
        for key, value in record.items():
            assert key in shape
            if isinstance(value, dict):
                for child in value:
                    assert f"{key}.{child}" in shape


ENRICH_SPECS = ("sketches", "unions", "sketches,unions")


class TestEnrichmentStateLaws:
    @given(a=st.lists(json_values(8), max_size=15),
           b=st.lists(json_values(8), max_size=15))
    @settings(max_examples=50, deadline=None)
    @pytest.mark.parametrize("spec", ENRICH_SPECS)
    def test_observe_agrees_with_merge(self, spec, a, b):
        options = parse_enrich_spec(spec)

        def build(values):
            state = EnrichmentState(options)
            for value in values:
                state.observe(value)
            return state

        together = build(a + b)
        merged = build(a).merge(build(b))
        assert merged == together
        assert merged.to_bytes() == together.to_bytes()
        # The sidecar alone is merge-commutative (unlike the
        # first-occurrence-ordered structural bag).
        assert build(b).merge(build(a)).to_bytes() == together.to_bytes()

    @given(values=st.lists(json_values(8), max_size=15))
    @settings(max_examples=50, deadline=None)
    @pytest.mark.parametrize("spec", ENRICH_SPECS)
    def test_codec_round_trip(self, spec, values):
        state = EnrichmentState(parse_enrich_spec(spec))
        for value in values:
            state.observe(value)
        decoded = EnrichmentState.from_bytes(state.to_bytes())
        assert decoded == state
        assert decoded.to_bytes() == state.to_bytes()

    def test_identity(self):
        state = EnrichmentState(parse_enrich_spec("sketches,unions"))
        for value in ({"a": 1}, {"a": "x", "b": [1.5, None]}):
            state.observe(value)
        assert state.empty_like().merge(state).to_bytes() == state.to_bytes()
        assert state.merge(state.empty_like()).to_bytes() == state.to_bytes()

    def test_mismatched_options_refuse_to_merge(self):
        sketchy = EnrichmentState(parse_enrich_spec("sketches"))
        unions = EnrichmentState(parse_enrich_spec("unions"))
        with pytest.raises(ValueError):
            sketchy.merge(unions)


class TestEnrichedDiscoveryStates:
    @given(a=st.lists(json_values(8), max_size=12),
           b=st.lists(json_values(8), max_size=12))
    @settings(max_examples=40, deadline=None)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_split_merge_equals_sequential(self, algorithm, a, b):
        sequential = state_for_algorithm(algorithm, enrich="sketches,unions")
        for value in a + b:
            sequential.absorb(value)
        left = state_for_algorithm(algorithm, enrich="sketches,unions")
        right = state_for_algorithm(algorithm, enrich="sketches,unions")
        for value in a:
            left.absorb(value)
        for value in b:
            right.absorb(value)
        merged = left.merge(right)
        assert merged.to_bytes() == sequential.to_bytes()
        decoded = type(sequential).from_bytes(sequential.to_bytes())
        assert decoded.to_bytes() == sequential.to_bytes()
        assert decoded.enrichment is not None

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_enriched_refuses_unenriched_merge(self, algorithm):
        rich = state_for_algorithm(algorithm, enrich="sketches")
        plain = state_for_algorithm(algorithm)
        rich.absorb({"a": 1})
        plain.absorb({"a": 2})
        with pytest.raises(ValueError):
            rich.merge(plain)
        with pytest.raises(ValueError):
            plain.merge(rich)

    @given(values=st.lists(json_values(8), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_enrichment_is_strictly_additive(self, algorithm, values):
        """Stripping the sidecar from an enriched state's bytes yields
        exactly the unenriched state's bytes — the differential-oracle
        invariant, at the state level."""
        plain = state_for_algorithm(algorithm)
        rich = state_for_algorithm(algorithm, enrich="sketches,unions")
        for value in values:
            plain.absorb(value)
            rich.absorb(value)
        clone = type(rich).from_bytes(rich.to_bytes())
        clone.enrichment = None
        assert clone.to_bytes() == plain.to_bytes()


class TestPathSketchBundles:
    @given(a=scalar_lists, b=scalar_lists)
    @settings(max_examples=50, deadline=None)
    def test_bundle_merge_agrees_with_absorb(self, a, b):
        options = EnrichmentOptions()

        def build(values):
            bundle = PathSketches(options)
            for value in values:
                bundle.absorb(value)
            return bundle

        assert build(a).merge(build(b)) == build(a + b)
