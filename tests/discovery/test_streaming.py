"""Tests for incremental (streaming) discovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_dataset
from repro.discovery import (
    Jxplain,
    KReduce,
    StreamingJxplain,
    StreamingKReduce,
)
from repro.errors import EmptyInputError
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=6), min_size=1, max_size=10)


class TestStreamingKReduce:
    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_exactly_matches_batch(self, values):
        """The stream equals the batch K-reduce at every prefix."""
        stream = StreamingKReduce()
        for index, value in enumerate(values):
            stream.observe(value)
            batch = KReduce().discover(values[: index + 1])
            assert stream.current_schema() == batch

    def test_counts(self):
        stream = StreamingKReduce()
        stream.observe_many([{"a": 1}, {"a": 2}])
        assert stream.record_count == 2

    def test_empty_stream_rejected(self):
        with pytest.raises(EmptyInputError):
            StreamingKReduce().current_schema()

    @given(value_lists, value_lists)
    @settings(max_examples=30, deadline=None)
    def test_merge_with(self, left_values, right_values):
        """Two independently-fed streams merge to the joint schema."""
        left = StreamingKReduce()
        left.observe_many(left_values)
        right = StreamingKReduce()
        right.observe_many(right_values)
        merged = left.merge_with(right)
        assert merged.current_schema() == KReduce().discover(
            left_values + right_values
        )
        assert merged.record_count == len(left_values) + len(right_values)


class TestStreamingJxplain:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamingJxplain(resynthesize_after=0)

    def test_empty_stream_rejected(self):
        with pytest.raises(EmptyInputError):
            StreamingJxplain().current_schema()

    def test_matches_batch_after_full_stream(self, login_serve_stream):
        stream = StreamingJxplain()
        stream.observe_many(login_serve_stream)
        # The stream's state is exactly the batch pipeline's sufficient
        # statistics (bag + stat tree, multiplicities included), so
        # forcing synthesis equals one-shot batch discovery over the
        # full stream.
        from repro.discovery import JxplainPipeline

        batch = JxplainPipeline().run(login_serve_stream).schema
        assert stream.current_schema() == batch

    def test_duplicates_are_not_novel(self):
        stream = StreamingJxplain()
        assert stream.observe({"a": 1}) is True
        assert stream.observe({"a": 2}) is False  # same type
        assert stream.retained_types == 1

    def test_novelty_triggers_resynthesis(self):
        stream = StreamingJxplain(resynthesize_after=2)
        stream.observe({"a": 1})
        schema_before = stream.current_schema()
        # Two novel shapes force an automatic rebuild.
        stream.observe({"a": 1, "b": 2})
        stream.observe({"a": 1, "c": 3})
        assert stream._novel_since_synthesis == 0
        assert stream.current_schema() != schema_before

    def test_validates_live(self):
        records = make_dataset("figure1").generate(120, seed=3)
        stream = StreamingJxplain()
        stream.observe_many(records[:100])
        accepted = sum(
            1 for record in records[100:] if stream.validates(record)
        )
        assert accepted >= 18  # new records of known shapes pass

    def test_novel_count_decreases_as_schema_stabilizes(self):
        records = make_dataset("github").generate(600, seed=5)
        stream = StreamingJxplain(resynthesize_after=8)
        early_novel = stream.observe_many(records[:300])
        late_novel = stream.observe_many(records[300:])
        assert late_novel < early_novel

    def test_retention_bound(self):
        stream = StreamingJxplain(max_retained=5)
        for index in range(20):
            stream.observe({f"field{index}": index})
        assert stream.retained_types == 5
