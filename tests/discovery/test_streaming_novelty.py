"""The novelty buffer never changes what StreamingJxplain synthesizes.

``StreamingJxplain`` defers synthesis until enough *novel* records
accumulate — a latency/throughput knob.  The correctness claim is that
the knob is invisible in the output: at every resynthesis point the
schema equals one-shot batch discovery over exactly the records
observed so far, regardless of stream order or how synthesis points
fall.  The state absorbs every record immediately (multiplicities
included); only the schema is lazy.
"""

import json
import random

from repro.datasets import make_dataset
from repro.discovery import JxplainPipeline, StreamingJxplain
from repro.schema import to_json_schema


def canon(schema) -> str:
    return json.dumps(to_json_schema(schema), sort_keys=True)


def batch_schema(records) -> str:
    return canon(JxplainPipeline().run(records).schema)


def test_every_resynthesis_point_matches_batch():
    records = make_dataset("github").generate(160, seed=7)
    random.Random(13).shuffle(records)
    stream = StreamingJxplain(resynthesize_after=4)
    synthesis_points = 0
    for index, record in enumerate(records):
        seen_syntheses = stream.synthesis_count
        stream.observe(record)
        if stream.synthesis_count > seen_syntheses:
            synthesis_points += 1
            # An automatic resynthesis just happened; the cached
            # schema (no pending novelty, so current_schema() does
            # not rebuild) must equal the batch run over the prefix.
            assert stream.pending_novelty == 0
            assert canon(stream.current_schema()) == batch_schema(
                records[: index + 1]
            )
    assert synthesis_points >= 3, "fixture never exercised the buffer"
    # And the final on-demand synthesis covers the whole stream.
    assert canon(stream.current_schema()) == batch_schema(records)


def test_order_invariance_across_shuffles():
    records = make_dataset("figure1").generate(90, seed=3)
    reference = batch_schema(records)
    for seed in (1, 2, 3):
        shuffled = list(records)
        random.Random(seed).shuffle(shuffled)
        stream = StreamingJxplain(resynthesize_after=5)
        stream.observe_many(shuffled)
        assert canon(stream.current_schema()) == reference


def test_buffer_size_is_invisible_in_the_state():
    """The knob only schedules synthesis; it never changes evidence.

    The cached schema may legitimately lag behind novelty-free drift
    (e.g. a collection's domain growing: new records admit, so nothing
    triggers a rebuild).  The accumulated *state*, however, must be
    byte-identical whatever the buffer size, so a forced synthesis
    equals the batch run no matter how lazily the stream ran.
    """
    records = make_dataset("pharma").generate(100, seed=11)
    reference = batch_schema(records)
    states = []
    for buffer_size in (1, 7, 1000):
        stream = StreamingJxplain(resynthesize_after=buffer_size)
        stream.observe_many(records)
        states.append(stream.state)
        assert canon(stream.state.synthesize()) == reference
    assert states[0].to_bytes() == states[1].to_bytes() == states[2].to_bytes()
