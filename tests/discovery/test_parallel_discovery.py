"""Backend-independence of discovery: serial ≡ threads ≡ processes.

The per-path entity work (pass ② partitioner compilation, recursive
entity merges) dispatches through the PR-1 executor backends; the
discovered schema must not depend on which backend ran it.
"""

import pytest

from repro.discovery.jxplain import Jxplain
from repro.discovery.pipeline import JxplainPipeline
from repro.engine.executor import resolve_executor
from repro.engine.instrument import counters, reset_perf_counters


@pytest.fixture
def multi_entity_records():
    """Three entity shapes sharing an envelope, plus nested arrays —
    enough distinct paths for pass ② to fan out."""
    records = []
    for index in range(12):
        records.append(
            {
                "id": index,
                "type": "push",
                "payload": {"ref": "main", "size": index},
                "tags": ["a", "b"],
            }
        )
        records.append(
            {
                "id": index,
                "type": "fork",
                "payload": {"forkee": {"name": f"r{index}", "private": False}},
            }
        )
        records.append(
            {
                "id": index,
                "type": "watch",
                "actor": {"login": f"u{index}"},
                "tags": [index],
            }
        )
    return records


BACKENDS = ["serial", "threads:2", "processes:2"]


class TestBackendIndependence:
    def test_jxplain_schema_identical(self, multi_entity_records):
        reference = Jxplain().discover(multi_entity_records)
        for spec in BACKENDS:
            executor = resolve_executor(spec)
            try:
                schema = Jxplain(executor=executor).discover(
                    multi_entity_records
                )
            finally:
                executor.close()
            assert schema == reference, spec

    def test_pipeline_schema_identical(self, multi_entity_records):
        reference = JxplainPipeline().discover(multi_entity_records)
        for spec in BACKENDS:
            schema = JxplainPipeline(executor=spec).discover(
                multi_entity_records
            )
            assert schema == reference, spec

    def test_pipeline_matches_recursive_reference(self, multi_entity_records):
        assert JxplainPipeline(executor="threads:2").discover(
            multi_entity_records
        ) == Jxplain().discover(multi_entity_records)

    def test_thread_fanout_counted(self, multi_entity_records):
        reset_perf_counters()
        executor = resolve_executor("threads:2")
        try:
            Jxplain(executor=executor).discover(multi_entity_records)
        finally:
            executor.close()
        snapshot = counters.snapshot()
        assert snapshot.get("jxplain.entity_fanouts", 0) >= 1

    def test_pipeline_partitioner_fanout_counted(self, multi_entity_records):
        reset_perf_counters()
        JxplainPipeline(executor="threads:2").discover(multi_entity_records)
        snapshot = counters.snapshot()
        assert snapshot.get("pipeline.partitioner_fanouts", 0) >= 1


class TestProcessPicklability:
    """The entity-merge tasks must genuinely ship to worker processes.

    Before the partial()-based task functions, the per-entity closures
    failed to pickle and the process backend silently degraded to its
    serial rescue — backend-equality held, but nothing ran in parallel.
    """

    def test_jxplain_entity_merges_pickle(self, multi_entity_records):
        reference = Jxplain().discover(multi_entity_records)
        reset_perf_counters()
        executor = resolve_executor("processes:2")
        try:
            schema = Jxplain(executor=executor).discover(
                multi_entity_records
            )
            assert executor.last_fallback_error is None
        finally:
            executor.close()
        assert schema == reference
        assert counters.get("executor.process_fallbacks") == 0

    def test_merger_state_drops_executor_on_pickle(self):
        import pickle

        from repro.discovery.jxplain import JxplainMerger

        executor = resolve_executor("threads:2")
        try:
            merger = JxplainMerger(executor=executor)
            clone = pickle.loads(pickle.dumps(merger))
        finally:
            executor.close()
        assert clone._executor is None
        assert clone.config == merger.config
