"""Stateful property testing of the streaming discoverers.

Hypothesis drives a random interleaving of observations and queries;
the invariants must hold at every step:

* both streams' current schemas admit every record observed so far;
* StreamingKReduce stays exactly equal to the batch K-reduction;
* StreamingJxplain's schema admits no fewer training records after
  more observations (monotone coverage of the observed set).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.discovery import KReduce, StreamingJxplain, StreamingKReduce
from tests.conftest import json_values


class StreamingMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.kreduce = StreamingKReduce()
        self.jxplain = StreamingJxplain(resynthesize_after=3)
        self.observed = []

    @rule(record=json_values(max_leaves=6))
    def observe(self, record):
        self.kreduce.observe(record)
        self.jxplain.observe(record)
        self.observed.append(record)

    @rule(records=st.lists(json_values(max_leaves=4), max_size=4))
    def observe_batch(self, records):
        self.kreduce.observe_many(records)
        self.jxplain.observe_many(records)
        self.observed.extend(records)

    @invariant()
    def schemas_cover_observed(self):
        if not self.observed:
            return
        k_schema = self.kreduce.current_schema()
        j_schema = self.jxplain.current_schema()
        for record in self.observed:
            assert k_schema.admits_value(record)
            assert j_schema.admits_value(record)

    @invariant()
    def kreduce_matches_batch(self):
        if not self.observed:
            return
        assert self.kreduce.current_schema() == KReduce().discover(
            self.observed
        )


StreamingMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestStreaming = StreamingMachine.TestCase
