"""Tests for the K-reduction (Algorithms 1–3) and its fold form."""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.kreduce import (
    KReduce,
    merge_k,
    merge_k_schemas,
)
from repro.errors import EmptyInputError
from repro.jsontypes.types import type_of
from repro.schema.nodes import (
    ArrayCollection,
    NEVER,
    ObjectTuple,
    Union,
)
from tests.conftest import json_values

value_lists = st.lists(json_values(max_leaves=8), min_size=1, max_size=8)


class TestMergeK:
    def test_example1_overgeneralization(self, figure1_records):
        """Example 1: K-reduce admits the invalid mixtures."""
        schema = merge_k([type_of(r) for r in figure1_records])
        assert schema.admits_value(figure1_records[0])
        assert schema.admits_value(figure1_records[1])
        # The false positives from the paper's Example 1:
        assert schema.admits_value(
            {
                "ts": 9,
                "event": "huh",
                "user": {"name": "x", "geo": [1.0, 2.0]},
                "files": ["a"],
            }
        )
        assert schema.admits_value({"ts": 10, "event": "wat"})

    def test_arrays_always_collections(self):
        """Example 5's complaint: geo pairs become [number]*."""
        schema = merge_k([type_of([1.0, 2.0]), type_of([3.0, 4.0])])
        assert isinstance(schema, ArrayCollection)
        assert schema.admits_value([1.0])
        assert schema.admits_value([1.0] * 7)

    def test_objects_always_tuples(self):
        """Example 6's complaint: collection-like objects become
        tuples, rejecting unseen keys."""
        schema = merge_k(
            [type_of({"DRUG_A": 1}), type_of({"DRUG_B": 2})]
        )
        assert isinstance(schema, ObjectTuple)
        assert not schema.admits_value({"DRUG_C": 3})

    def test_required_vs_optional(self):
        schema = merge_k(
            [type_of({"a": 1, "b": 2}), type_of({"a": 1, "c": 3})]
        )
        assert schema.required_keys == frozenset({"a"})
        assert schema.optional_keys == frozenset({"b", "c"})

    def test_mixed_kinds_union(self):
        schema = merge_k([type_of(1), type_of("x"), type_of([1]), type_of({"a": 1})])
        assert isinstance(schema, Union)
        assert len(schema.branches) == 4

    def test_nested_recursion(self):
        schema = merge_k(
            [
                type_of({"user": {"name": "a"}}),
                type_of({"user": {"name": "b", "age": 3}}),
            ]
        )
        user_schema = schema.field_schema("user")
        assert user_schema.required_keys == frozenset({"name"})
        assert user_schema.optional_keys == frozenset({"age"})

    def test_empty_arrays_only(self):
        schema = merge_k([type_of([]), type_of([])])
        assert schema.admits_value([])
        assert not schema.admits_value([1])

    def test_empty_input_rejected(self):
        with pytest.raises(EmptyInputError):
            merge_k([])

    @given(value_lists)
    def test_admits_all_training_records(self, values):
        """K-reduce has recall 1.0 on its own training data."""
        schema = KReduce().discover(values)
        for value in values:
            assert schema.admits_value(value)

    @given(value_lists)
    def test_generalizes_lreduce(self, values):
        """Everything the L-reduction admits, K-reduction admits too."""
        from repro.discovery.lreduce import merge_naive

        types = [type_of(v) for v in values]
        naive = merge_naive(types)
        kreduce = merge_k(types)
        for tau in types:
            assert naive.admits_type(tau)
            assert kreduce.admits_type(tau)


class TestDistributivity:
    """merge_K(R1 ∪ R2) == merge_K_schemas(merge_K(R1), merge_K(R2))."""

    @given(value_lists, value_lists)
    @settings(max_examples=50)
    def test_distributes_over_union(self, left_values, right_values):
        left = merge_k([type_of(v) for v in left_values])
        right = merge_k([type_of(v) for v in right_values])
        combined = merge_k(
            [type_of(v) for v in left_values + right_values]
        )
        assert merge_k_schemas(left, right) == combined

    @given(value_lists)
    @settings(max_examples=50)
    def test_fold_equals_batch(self, values):
        """Folding per-record schemas pairwise reproduces the batch
        merge — the property that makes K-reduce distributable."""
        per_record = [merge_k([type_of(v)]) for v in values]
        folded = functools.reduce(merge_k_schemas, per_record, NEVER)
        assert folded == merge_k([type_of(v) for v in values])

    def test_identity_element(self):
        schema = merge_k([type_of({"a": 1})])
        assert merge_k_schemas(NEVER, schema) == schema
        assert merge_k_schemas(schema, NEVER) == schema

    @given(value_lists, value_lists)
    @settings(max_examples=30)
    def test_commutative(self, left_values, right_values):
        left = merge_k([type_of(v) for v in left_values])
        right = merge_k([type_of(v) for v in right_values])
        assert merge_k_schemas(left, right) == merge_k_schemas(right, left)
