"""Coverage for small branches the focused suites do not reach."""

import pytest

from repro.cli import main
from repro.errors import (
    DatasetError,
    EmptyInputError,
    EngineError,
    InvalidJsonValueError,
    RecursionDepthError,
    ReproError,
    SchemaConstructionError,
    UnsupportedSchemaError,
)
from repro.io.jsonlines import write_jsonlines


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_type in (
            InvalidJsonValueError,
            SchemaConstructionError,
            EmptyInputError,
            UnsupportedSchemaError,
            DatasetError,
            EngineError,
            RecursionDepthError,
        ):
            assert issubclass(error_type, ReproError)

    def test_dual_inheritance(self):
        # Library errors remain catchable by their stdlib counterparts.
        assert issubclass(InvalidJsonValueError, TypeError)
        assert issubclass(SchemaConstructionError, ValueError)
        assert issubclass(EngineError, RuntimeError)
        assert issubclass(RecursionDepthError, RecursionError)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.discovery
        import repro.entities
        import repro.jsontypes
        import repro.metrics
        import repro.schema
        import repro.validation

        for module in (
            repro.discovery,
            repro.entities,
            repro.jsontypes,
            repro.metrics,
            repro.schema,
            repro.validation,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestCliEntropyFlag:
    def test_literal_collections_flag(self, tmp_path, capsys):
        records = [
            {"sig": {f"s{i % 9}": {f"k{i % 7}": "x"}}} for i in range(60)
        ]
        data = tmp_path / "sig.jsonl"
        write_jsonlines(data, records)
        schema_path = tmp_path / "schema.json"
        assert (
            main(
                [
                    "discover",
                    str(data),
                    "--format",
                    "json",
                    "--output",
                    str(schema_path),
                ]
            )
            == 0
        )
        assert main(["entropy", str(schema_path)]) == 0
        decision = float(capsys.readouterr().out)
        assert (
            main(
                ["entropy", str(schema_path), "--literal-collections"]
            )
            == 0
        )
        literal = float(capsys.readouterr().out)
        # Nested collections compound under the literal convention.
        assert literal >= decision


class TestDocgenCollectionsOfObjects:
    def test_array_of_objects_section(self):
        from repro.schema.docgen import schema_to_markdown
        from repro.schema.nodes import (
            ArrayCollection,
            NUMBER_S,
            ObjectCollection,
            ObjectTuple,
            STRING_S,
        )

        schema = ObjectTuple(
            {
                "items": ArrayCollection(
                    ObjectTuple({"sku": STRING_S, "qty": NUMBER_S}), 6
                ),
                "index": ObjectCollection(
                    ObjectTuple({"rank": NUMBER_S}), domain=("a", "b")
                ),
            }
        )
        text = schema_to_markdown(schema)
        assert "Array elements" in text
        assert "| `sku` |" in text
        assert "Collection values" in text
        assert "| `rank` |" in text


class TestDiffSimilarityPairing:
    def test_non_tuple_branches_pair_loosely(self):
        from repro.schema.nodes import ArrayCollection, NUMBER_S, STRING_S, union
        from repro.validation.diff import ChangeKind, diff_schemas

        old = union(NUMBER_S, ArrayCollection(NUMBER_S))
        new = union(NUMBER_S, ArrayCollection(STRING_S))
        diff = diff_schemas(old, new)
        # The array branches pair up (same node type) and report the
        # element change rather than an entity swap.
        kinds = {change.kind for change in diff.changes}
        assert ChangeKind.TYPE_CHANGED in kinds
        assert ChangeKind.ENTITY_ADDED not in kinds


class TestSweepEdges:
    def test_fraction_yielding_empty_sample_skipped(self):
        from repro.discovery import KReduce
        from repro.metrics.recall import run_sweep

        records = [{"a": i} for i in range(10)]
        # 10% of a 9-record training pool rounds to one record; zero
        # fraction would be filtered by uniform_sample's guard.
        sweep = run_sweep(
            "tiny", records, [KReduce()], fractions=(0.1,), trials=1
        )
        assert len(sweep.trials) == 1

    def test_format_empty_sweep(self):
        from repro.metrics.recall import SweepResult, format_sweep_table

        table = format_sweep_table(SweepResult(dataset="x"), "recall")
        assert "dataset" in table
