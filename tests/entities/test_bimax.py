"""Tests for Bimax (Algorithms 6 and 7)."""

from hypothesis import given

from repro.entities.bimax import (
    bimax_naive,
    bimax_order,
    block_boundaries,
)
from tests.conftest import key_set_lists


def fs(*keys):
    return frozenset(keys)


class TestBimaxOrder:
    def test_descending_start(self):
        ordering = bimax_order([fs("a"), fs("a", "b", "c"), fs("a", "b")])
        assert ordering[0] == fs("a", "b", "c")

    def test_subsets_adjacent_to_seed(self):
        ordering = bimax_order(
            [fs("x", "y"), fs("a", "b", "c"), fs("a"), fs("b", "c")]
        )
        # The seed block {a,b,c} ⊇ {a}, {b,c} comes first, then the
        # disjoint {x,y}.
        assert ordering[:3] == [fs("a", "b", "c"), fs("b", "c"), fs("a")]
        assert ordering[3] == fs("x", "y")

    @given(key_set_lists)
    def test_order_is_permutation(self, key_sets):
        distinct = list(dict.fromkeys(key_sets))
        ordering = bimax_order(distinct)
        assert sorted(ordering, key=repr) == sorted(distinct, key=repr)

    @given(key_set_lists)
    def test_deterministic(self, key_sets):
        assert bimax_order(key_sets) == bimax_order(key_sets)


class TestBimaxNaive:
    def test_single_entity_with_subsets(self):
        clusters = bimax_naive([fs("a", "b", "c"), fs("a"), fs("b")])
        assert len(clusters) == 1
        assert clusters[0].maximal == fs("a", "b", "c")
        assert len(clusters[0].members) == 3

    def test_disjoint_entities_stay_apart(self):
        clusters = bimax_naive([fs("a", "b"), fs("x", "y")])
        assert len(clusters) == 2

    def test_overlapping_non_subset_splits(self):
        clusters = bimax_naive([fs("a", "b"), fs("b", "c")])
        assert len(clusters) == 2

    def test_duplicates_collapse(self):
        clusters = bimax_naive([fs("a"), fs("a"), fs("a")])
        assert len(clusters) == 1
        assert len(clusters[0].members) == 1

    def test_optional_field_fragmentation(self):
        """Without a maximal record, one logical entity fragments —
        the motivation for GreedyMerge (Example 10)."""
        clusters = bimax_naive(
            [fs("id", "a"), fs("id", "b"), fs("id", "c")]
        )
        assert len(clusters) == 3

    @given(key_set_lists)
    def test_members_subset_of_maximal(self, key_sets):
        for cluster in bimax_naive(key_sets):
            for member in cluster.members:
                assert member <= cluster.maximal

    @given(key_set_lists)
    def test_clusters_partition_distinct_inputs(self, key_sets):
        distinct = set(key_sets)
        clusters = bimax_naive(key_sets)
        seen = [member for cluster in clusters for member in cluster.members]
        assert len(seen) == len(distinct)
        assert set(seen) == distinct

    @given(key_set_lists)
    def test_maximal_is_a_member(self, key_sets):
        """Bimax-Naive seeds each cluster from an observed record."""
        for cluster in bimax_naive(key_sets):
            assert cluster.maximal in cluster.members
            assert not cluster.synthesized


class TestBlockBoundaries:
    def test_spans_cover_input(self):
        key_sets = [fs("a", "b"), fs("a"), fs("x")]
        spans = block_boundaries(key_sets)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(set(key_sets))
