"""Frozenset ↔ bitset equivalence for the whole entity stack.

The bitset layer promises byte-identical output — same maximals, same
members, same emission order, same assignments — for every algorithm it
accelerates.  These tests run each algorithm under both representations
on hypothesis-generated and randomized seeded bags and compare results
structurally.
"""

import random

import pytest
from hypothesis import given

from repro.entities.bimax import (
    EntityCluster,
    _sorted_by_size,
    bimax_naive,
    bimax_order,
)
from repro.entities.greedy_merge import bimax_merge, greedy_merge
from repro.entities.keyset import (
    KeySetUniverse,
    set_entity_representation,
)
from repro.entities.partitioner import EntityPartitioner
from repro.entities.set_cover import greedy_set_cover, greedy_set_cover_masks
from tests.conftest import key_set_lists


def fs(*keys):
    return frozenset(keys)


def both_representations(fn, *args):
    """Run ``fn(*args)`` under each representation; return both results."""
    outputs = {}
    for mode in ("frozenset", "bitset"):
        previous = set_entity_representation(mode)
        try:
            outputs[mode] = fn(*args)
        finally:
            set_entity_representation(previous)
    return outputs["frozenset"], outputs["bitset"]


def cluster_shape(clusters):
    """The full observable structure of a cluster list."""
    return [
        (c.maximal, c.members, c.synthesized, c.member_counts)
        for c in clusters
    ]


def seeded_bags(cases=25):
    """Randomized entity-shaped corpora: per-entity cores plus
    independent optional keys, mixed-type features included."""
    for case in range(cases):
        rng = random.Random(1000 + case)
        vocabulary = [f"k{i}" for i in range(rng.randint(6, 30))]
        # Mixed-type keys (path tuples next to strings) exercise the
        # repr-based tie-break ordering.
        vocabulary += [("p", i) for i in range(rng.randint(0, 4))]
        shapes = []
        for _ in range(rng.randint(1, 6)):
            core = rng.sample(vocabulary, rng.randint(1, len(vocabulary) // 2 + 1))
            optional = rng.sample(vocabulary, min(len(vocabulary), 6))
            shapes.append((core, optional))
        bag = []
        for _ in range(rng.randint(5, 80)):
            core, optional = rng.choice(shapes)
            ks = set(core)
            for key in optional:
                if rng.random() < 0.4:
                    ks.add(key)
            bag.append(frozenset(ks))
        yield bag


class TestAlgorithmEquivalence:
    @given(key_set_lists)
    def test_bimax_order(self, key_sets):
        a, b = both_representations(bimax_order, key_sets)
        assert a == b

    @given(key_set_lists)
    def test_bimax_naive(self, key_sets):
        a, b = both_representations(bimax_naive, key_sets)
        assert cluster_shape(a) == cluster_shape(b)

    @given(key_set_lists)
    def test_greedy_merge(self, key_sets):
        def run(ks):
            return greedy_merge(bimax_naive(ks))

        a, b = both_representations(run, key_sets)
        assert cluster_shape(a) == cluster_shape(b)

    @given(key_set_lists)
    def test_bimax_merge(self, key_sets):
        a, b = both_representations(bimax_merge, key_sets)
        assert cluster_shape(a) == cluster_shape(b)

    @pytest.mark.parametrize("case", range(25))
    def test_seeded_bags_end_to_end(self, case):
        bag = list(seeded_bags())[case]

        def run(ks):
            clusters = bimax_merge(ks)
            partitioner = EntityPartitioner(clusters)
            probes = ks + [
                frozenset(set(x) | set(y)) for x, y in zip(ks, ks[1:])
            ] + [fs("unseen-key"), fs()]
            return cluster_shape(clusters), [
                partitioner.assign(p) for p in probes
            ]

        a, b = both_representations(run, bag)
        assert a == b

    @pytest.mark.parametrize("case", range(10))
    def test_greedy_set_cover_masks_match(self, case):
        rng = random.Random(2000 + case)
        vocabulary = [f"k{i}" for i in range(rng.randint(4, 16))]
        candidates = [
            frozenset(rng.sample(vocabulary, rng.randint(1, len(vocabulary))))
            for _ in range(rng.randint(1, 10))
        ]
        target = frozenset(
            rng.sample(vocabulary, rng.randint(0, len(vocabulary)))
        )
        universe = KeySetUniverse.from_key_sets(candidates + [target])
        expected = greedy_set_cover(target, candidates)
        got = greedy_set_cover_masks(
            universe.encode(target),
            [universe.encode(c) for c in candidates],
        )
        assert got == expected


class TestSortDeterminism:
    def test_sorted_by_size_ignores_input_order(self):
        """Regression: the tie-break must be a pure function of the
        key-sets, so any permutation of the input sorts identically."""
        rng = random.Random(7)
        key_sets = [
            frozenset(rng.sample("abcdefgh", rng.randint(0, 8)))
            for _ in range(40)
        ] + [fs("a", ("p", 1)), fs(("p", 0)), fs(2, "b")]
        reference = _sorted_by_size(key_sets)
        for _ in range(10):
            shuffled = list(key_sets)
            rng.shuffle(shuffled)
            assert _sorted_by_size(shuffled) == reference

    def test_mixed_type_keys_sort(self):
        out = _sorted_by_size([fs(("p", 0)), fs("a"), fs(1)])
        assert len(out) == 3
        assert all(len(ks) == 1 for ks in out)


class TestPartitionerRule3:
    def test_overlap_tie_prefers_smaller_maximal(self):
        big = EntityCluster(maximal=fs("a", "b", "c"), members=[fs("b", "c")])
        small = EntityCluster(maximal=fs("a", "d"), members=[fs("a", "d")])
        partitioner = EntityPartitioner([big, small])
        # {a, q}: overlap 1 with both maximals; the smaller maximal
        # ({a, d}, size 2) wins the tie.
        assert partitioner.assign(fs("a", "q")) == 1

    def test_overlap_and_size_tie_prefers_first(self):
        first = EntityCluster(maximal=fs("a", "b"), members=[fs("b")])
        second = EntityCluster(maximal=fs("a", "c"), members=[fs("c")])
        partitioner = EntityPartitioner([first, second])
        # {a, q}: overlap 1, size 2 for both — index order decides.
        assert partitioner.assign(fs("a", "q")) == 0

    def test_rule3_equivalent_across_representations(self):
        def build_and_probe():
            clusters = [
                EntityCluster(maximal=fs("a", "b", "c"), members=[fs("a", "b", "c")]),
                EntityCluster(maximal=fs("c", "d"), members=[fs("c", "d")]),
                EntityCluster(maximal=fs("e", "f"), members=[fs("e", "f")]),
            ]
            partitioner = EntityPartitioner(clusters)
            probes = [
                fs("c", "zzz"),
                fs("a", "d", "zzz"),
                fs("zzz"),
                fs("e", "c"),
            ]
            return [partitioner.assign(p) for p in probes]

        a, b = both_representations(build_and_probe)
        assert a == b
