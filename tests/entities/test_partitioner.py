"""Tests for the deterministic entity partitioner."""

import pytest
from hypothesis import given

from repro.entities.bimax import EntityCluster, bimax_naive
from repro.entities.partitioner import EntityPartitioner
from tests.conftest import key_set_lists


def fs(*keys):
    return frozenset(keys)


def make_partitioner(*maximals):
    clusters = [
        EntityCluster(maximal=fs(*keys), members=[fs(*keys)])
        for keys in maximals
    ]
    return EntityPartitioner(clusters)


class TestAssign:
    def test_member_match_wins(self):
        clusters = [
            EntityCluster(maximal=fs("a", "b"), members=[fs("a")]),
            EntityCluster(maximal=fs("a", "z"), members=[fs("a", "z")]),
        ]
        partitioner = EntityPartitioner(clusters)
        assert partitioner.assign(fs("a")) == 0

    def test_smallest_superset_wins(self):
        partitioner = make_partitioner(("a", "b", "c", "d"), ("a", "b"))
        assert partitioner.assign(fs("a")) == 1

    def test_overlap_fallback(self):
        partitioner = make_partitioner(("a", "b"), ("x", "y", "z"))
        # {x, q} matches no maximal superset; best overlap is entity 1.
        assert partitioner.assign(fs("x", "q")) == 1

    def test_no_overlap_is_still_assigned(self):
        partitioner = make_partitioner(("a",), ("b",))
        assert partitioner.assign(fs("zzz")) in (0, 1)

    def test_deterministic(self):
        partitioner = make_partitioner(("a", "b"), ("b", "c"))
        assignments = [partitioner.assign(fs("b")) for _ in range(10)]
        assert len(set(assignments)) == 1

    def test_empty_clusters_rejected(self):
        with pytest.raises(ValueError):
            EntityPartitioner([])


class TestPartition:
    def test_groups_align_with_assignments(self):
        partitioner = make_partitioner(("a", "b"), ("x", "y"))
        items = ["r1", "r2", "r3"]
        key_sets = [fs("a"), fs("x"), fs("a", "b")]
        groups = partitioner.partition(items, key_sets)
        assert groups == [["r1", "r3"], ["r2"]]

    def test_length_mismatch_rejected(self):
        partitioner = make_partitioner(("a",))
        with pytest.raises(ValueError):
            partitioner.partition(["x"], [])

    def test_non_empty_groups_drops_empties(self):
        partitioner = make_partitioner(("a",), ("b",))
        groups = partitioner.non_empty_groups(["r"], [fs("a")])
        assert groups == [["r"]]

    @given(key_set_lists)
    def test_training_members_return_home(self, key_sets):
        """Every key-set used to build the clusters is assigned to a
        cluster that actually contains it."""
        clusters = bimax_naive(key_sets)
        partitioner = EntityPartitioner(clusters)
        for key_set in set(key_sets):
            index = partitioner.assign(key_set)
            assert key_set in clusters[index].members
