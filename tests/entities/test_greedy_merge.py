"""Tests for GreedyMerge (Algorithm 8), including Example 11."""

from hypothesis import given

from repro.entities.bimax import EntityCluster, bimax_naive
from repro.entities.greedy_merge import bimax_merge, greedy_merge
from tests.conftest import key_set_lists


def fs(*keys):
    return frozenset(keys)


def cluster(*keys):
    maximal = fs(*keys)
    return EntityCluster(maximal=maximal, members=[maximal])


class TestExample11:
    """The paper's worked example of GreedyMerge."""

    def test_example11(self):
        clusters = [
            cluster("A", "B", "E"),   # E1
            cluster("B", "C", "E"),   # E2
            cluster("C", "D", "E"),   # E3
            cluster("B", "D"),        # E4 (smallest, processed first)
        ]
        merged = greedy_merge(clusters)
        assert len(merged) == 2
        # The first emitted entity is E4 merged with its cover E2, E3.
        combined = merged[0]
        assert combined.maximal == fs("B", "C", "D", "E")
        assert combined.synthesized
        # E1 remains alone: it cannot cover the combined entity.
        assert merged[1].maximal == fs("A", "B", "E")
        assert not merged[1].synthesized


class TestGreedyMerge:
    def test_fragmented_entity_coalesces(self):
        """Example 10's setting: optional fields fragment one entity;
        the fragments cover each other and merge back."""
        fragments = bimax_naive(
            [
                fs("id", "a", "b"),
                fs("id", "b", "c"),
                fs("id", "a", "c"),
            ]
        )
        assert len(fragments) == 3
        merged = greedy_merge(fragments)
        assert len(merged) == 1
        assert merged[0].maximal == fs("id", "a", "b", "c")

    def test_unique_keys_prevent_merging(self):
        """Entities owning a key nothing else has stay separate, even
        when they share foreign keys."""
        clusters = bimax_naive(
            [
                fs("business_id", "review_id", "text"),
                fs("business_id", "photo_id", "label"),
            ]
        )
        merged = greedy_merge(clusters)
        assert len(merged) == 2

    def test_subset_entity_absorbed(self):
        """A cluster whose maximal is covered by one superset merges
        into it — the GitHub subset-event behaviour of Table 3."""
        clusters = bimax_naive(
            [
                fs("ref", "ref_type", "pusher", "desc"),   # CreateEvent
                fs("ref", "ref_type", "pusher"),           # DeleteEvent
            ]
        )
        # Delete ⊆ Create: Bimax-Naive already absorbs it as a subset.
        assert len(greedy_merge(clusters)) == 1

    def test_empty_input(self):
        assert greedy_merge([]) == []

    def test_single_cluster_passthrough(self):
        merged = greedy_merge([cluster("a", "b")])
        assert len(merged) == 1
        assert merged[0].maximal == fs("a", "b")

    def test_members_are_preserved(self):
        clusters = bimax_naive([fs("id", "a"), fs("id", "b")])
        merged = greedy_merge(clusters)
        all_members = [m for c in merged for m in c.members]
        assert sorted(all_members, key=repr) == sorted(
            [fs("id", "a"), fs("id", "b")], key=repr
        )

    @given(key_set_lists)
    def test_never_loses_records(self, key_sets):
        distinct = set(key_sets)
        merged = bimax_merge(key_sets)
        members = [m for c in merged for m in c.members]
        assert set(members) == distinct
        assert len(members) == len(distinct)

    @given(key_set_lists)
    def test_merge_never_increases_count(self, key_sets):
        naive = bimax_naive(key_sets)
        merged = greedy_merge(naive)
        assert len(merged) <= len(naive)
        assert (not key_sets) or len(merged) >= 1

    @given(key_set_lists)
    def test_members_within_maximal(self, key_sets):
        for entity in bimax_merge(key_sets):
            for member in entity.members:
                assert member <= entity.maximal

    @given(key_set_lists)
    def test_terminates_deterministically(self, key_sets):
        first = bimax_merge(key_sets)
        second = bimax_merge(key_sets)
        assert [c.maximal for c in first] == [c.maximal for c in second]
