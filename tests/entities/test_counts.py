"""Multiplicity threading through the entity stack.

Bimax dedup historically dropped duplicate counts on the floor; these
tests pin the counted path: ``distinct_key_sets`` accumulates weights,
clusters carry ``member_counts`` end to end through GreedyMerge and the
fixpoint loop, the partitioner exposes weights, and k-means can weight
by multiplicity.
"""

import numpy as np
import pytest

from repro.discovery.config import EntityStrategy, JxplainConfig
from repro.discovery.jxplain import cluster_key_sets
from repro.entities.bimax import bimax_naive, distinct_key_sets
from repro.entities.greedy_merge import greedy_merge, merge_to_fixpoint
from repro.entities.kmeans import kmeans_key_sets
from repro.entities.partitioner import EntityPartitioner


def fs(*keys):
    return frozenset(keys)


class TestDistinctKeySets:
    def test_occurrences_accumulate(self):
        distinct, weights = distinct_key_sets(
            [fs("a"), fs("b"), fs("a"), fs("a")]
        )
        assert distinct == [fs("a"), fs("b")]
        assert weights == [3, 1]

    def test_first_occurrence_order(self):
        distinct, _ = distinct_key_sets([fs("b"), fs("a"), fs("b")])
        assert distinct == [fs("b"), fs("a")]

    def test_explicit_counts_accumulate(self):
        distinct, weights = distinct_key_sets(
            [fs("a"), fs("b"), fs("a")], counts=[5, 2, 7]
        )
        assert distinct == [fs("a"), fs("b")]
        assert weights == [12, 2]


class TestClusterCounts:
    def test_bimax_naive_records_member_counts(self):
        clusters = bimax_naive(
            [fs("a", "b"), fs("a"), fs("a")], counts=[1, 1, 1]
        )
        assert len(clusters) == 1
        cluster = clusters[0]
        assert cluster.members == [fs("a", "b"), fs("a")]
        assert cluster.member_counts == [1, 2]
        assert cluster.weight == 3

    def test_counts_omitted_means_none(self):
        clusters = bimax_naive([fs("a"), fs("a")])
        assert clusters[0].member_counts is None
        assert clusters[0].weight == 1  # falls back to member count

    def test_greedy_merge_propagates_counts(self):
        # No maximal record exists, but each fragment's keys re-occur
        # across the other two; the merge synthesizes {a,b,c} and must
        # keep every member's multiplicity.
        naive = bimax_naive(
            [fs("a", "b"), fs("b", "c"), fs("a", "c")], counts=[1, 4, 2]
        )
        merged = merge_to_fixpoint(greedy_merge(naive))
        assert len(merged) == 1
        cluster = merged[0]
        assert cluster.maximal == fs("a", "b", "c")
        assert cluster.synthesized
        assert sorted(cluster.member_counts) == [1, 2, 4]
        assert cluster.weight == 7

    def test_cluster_key_sets_threads_counts(self):
        config = JxplainConfig(entity_strategy=EntityStrategy.BIMAX_MERGE)
        clusters = cluster_key_sets(
            [fs("id", "a"), fs("id", "b")], config, counts=[10, 3]
        )
        weights = {c.maximal: c.weight for c in clusters}
        assert sum(weights.values()) == 13

    def test_cluster_key_sets_single_strategy(self):
        config = JxplainConfig(entity_strategy=EntityStrategy.SINGLE)
        clusters = cluster_key_sets(
            [fs("a"), fs("b"), fs("a")], config, counts=[2, 1, 5]
        )
        assert clusters[0].member_counts == [7, 1]


class TestPartitionerWeights:
    def test_cluster_weights(self):
        clusters = bimax_naive([fs("a"), fs("b")], counts=[4, 9])
        partitioner = EntityPartitioner(clusters)
        assert sorted(partitioner.cluster_weights()) == [4, 9]

    def test_group_weights_default_unit_counts(self):
        clusters = bimax_naive([fs("a"), fs("b")])
        partitioner = EntityPartitioner(clusters)
        weights = partitioner.group_weights([fs("a"), fs("a"), fs("b")])
        assert sorted(weights) == [1, 2]

    def test_group_weights_with_counts(self):
        clusters = bimax_naive([fs("a"), fs("b")])
        partitioner = EntityPartitioner(clusters)
        weights = partitioner.group_weights(
            [fs("a"), fs("b")], counts=[100, 1]
        )
        assert sorted(weights) == [1, 100]


class TestWeightedKMeans:
    def test_unit_weights_match_unweighted(self):
        # Unit weights change the seeding RNG draws but not the
        # clustering: the induced partition and inertia are identical
        # (labels may be permuted).
        key_sets = [fs("a", "b"), fs("a"), fs("x", "y"), fs("x")]
        plain = kmeans_key_sets(key_sets, 2, seed=3)
        unit = kmeans_key_sets(key_sets, 2, seed=3, weights=[1, 1, 1, 1])

        def partition(labels):
            groups = {}
            for index, label in enumerate(labels):
                groups.setdefault(int(label), set()).add(index)
            return {frozenset(g) for g in groups.values()}

        assert partition(plain.labels) == partition(unit.labels)
        assert plain.inertia == pytest.approx(unit.inertia)

    def test_weights_pull_centroids(self):
        # Two shapes in one cluster; the heavier one should dominate
        # the centroid, matching clustering of the duplicated corpus.
        key_sets = [fs("a", "b"), fs("a")]
        heavy = kmeans_key_sets(key_sets, 1, seed=0, weights=[99, 1])
        duplicated = kmeans_key_sets(
            [fs("a", "b")] * 99 + [fs("a")], 1, seed=0
        )
        assert np.allclose(
            sorted(heavy.centroids[0]), sorted(duplicated.centroids[0])
        )

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kmeans_key_sets([fs("a")], 1, weights=[1, 2])

    def test_config_gates_weighting(self):
        config = JxplainConfig(
            entity_strategy=EntityStrategy.KMEANS, kmeans_k=1
        )
        key_sets = [fs("a", "b"), fs("a"), fs("a")]
        ungated = cluster_key_sets(key_sets, config, counts=[1, 1, 1])
        gated = cluster_key_sets(
            key_sets,
            config.with_(kmeans_weighted=True),
            counts=[1, 1, 1],
        )
        # Both run; the gate only changes which kmeans path executes.
        assert sum(c.weight for c in ungated) == 3
        assert sum(c.weight for c in gated) == 3
