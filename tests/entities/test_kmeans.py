"""Tests for the k-means baseline (§7.3)."""

import numpy as np
import pytest

from repro.entities.kmeans import (
    encode_key_sets,
    kmeans_clusters,
    kmeans_key_sets,
)


def fs(*keys):
    return frozenset(keys)


class TestEncoding:
    def test_binary_matrix(self):
        matrix, vocabulary = encode_key_sets([fs("a", "b"), fs("b", "c")])
        assert matrix.shape == (2, 3)
        assert vocabulary == ("a", "b", "c")
        assert matrix.sum() == 4

    def test_empty_input(self):
        matrix, vocabulary = encode_key_sets([])
        assert matrix.shape == (0, 0)
        assert vocabulary == ()

    def test_path_features_encode(self):
        # Mixed-type feature keys (path tuples) must sort via repr.
        matrix, vocabulary = encode_key_sets(
            [fs(("a",), ("a", 0)), fs(("b",))]
        )
        assert matrix.shape == (2, 3)


class TestKMeans:
    def test_separates_disjoint_groups(self):
        key_sets = [fs("a", "b"), fs("a", "b", "c")] * 5 + [
            fs("x", "y"),
            fs("x", "y", "z"),
        ] * 5
        result = kmeans_key_sets(key_sets, 2, seed=1)
        labels = result.labels
        first_group = set(labels[:10])
        second_group = set(labels[10:])
        assert len(first_group) == 1
        assert len(second_group) == 1
        assert first_group != second_group

    def test_deterministic_under_seed(self):
        key_sets = [fs("a"), fs("b"), fs("a", "b"), fs("c")]
        first = kmeans_key_sets(key_sets, 2, seed=7)
        second = kmeans_key_sets(key_sets, 2, seed=7)
        assert np.array_equal(first.labels, second.labels)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans_key_sets([fs("a")], 0)
        with pytest.raises(ValueError):
            kmeans_key_sets([fs("a")], 2)
        with pytest.raises(ValueError):
            kmeans_key_sets([], 1)

    def test_k_equals_n(self):
        key_sets = [fs("a"), fs("b"), fs("c")]
        result = kmeans_key_sets(key_sets, 3, seed=0)
        assert len(set(result.labels.tolist())) == 3
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_cluster_key_sets_threshold(self):
        key_sets = [fs("a", "b")] * 4
        result = kmeans_key_sets(key_sets, 1, seed=0)
        assert result.cluster_key_sets() == [fs("a", "b")]

    def test_kmeans_clusters_grouping(self):
        key_sets = [fs("a")] * 3 + [fs("z", "y", "x")] * 3
        groups = kmeans_clusters(key_sets, 2, seed=0)
        sizes = sorted(len(group) for group in groups)
        assert sizes == [3, 3]

    def test_entity_size_skew_weakness(self):
        """Example 9's point: equal-weight features make k-means carve
        big entities apart while lumping small ones — this is the
        failure mode Table 3 shows.  We only assert the clustering is
        *imperfect* on a skewed instance, not its exact shape."""
        big = [fs(*(f"b{i}" for i in range(20))) - {f"b{j}"} for j in range(10)]
        small = [fs("b0", "s1"), fs("b0", "s2")]
        key_sets = big + small
        result = kmeans_key_sets(key_sets, 2, seed=3)
        small_labels = set(result.labels[-2:].tolist())
        big_labels = set(result.labels[:-2].tolist())
        # Either the small entity is starved (shares the big label) or
        # the big entity is split; perfect separation is not expected.
        imperfect = (small_labels & big_labels) or len(big_labels) > 1
        assert imperfect
