"""Tests for feature-vector preprocessing (§6.4)."""

from repro.entities.features import (
    FeatureVectorSet,
    extract_feature_vectors,
    feature_memory_profile,
    top_level_key_set,
    type_paths,
)
from repro.jsontypes.paths import STAR
from repro.jsontypes.types import type_of


class TestTypePaths:
    def test_flat_object(self):
        tau = type_of({"a": 1, "b": "x"})
        assert type_paths(tau) == frozenset({("a",), ("b",)})

    def test_nested_paths(self):
        tau = type_of({"a": {"b": 1}, "c": [True]})
        assert type_paths(tau) == frozenset(
            {("a",), ("a", "b"), ("c",), ("c", 0)}
        )

    def test_collection_pruning(self):
        tau = type_of({"counts": {"drug1": 1, "drug2": 2}, "id": 7})
        pruned = type_paths(
            tau, collection_paths=frozenset({("counts",)})
        )
        # The collection path itself remains a feature; its internal
        # keys do not.
        assert pruned == frozenset({("counts",), ("id",)})

    def test_collection_generalization_without_pruning(self):
        tau = type_of({"counts": {"drug1": {"q": 1}, "drug2": {"q": 2}}})
        features = type_paths(
            tau,
            collection_paths=frozenset({("counts",)}),
            prune_nested=False,
        )
        assert ("counts", STAR) in features
        assert ("counts", STAR, "q") in features
        assert ("counts", "drug1") not in features

    def test_root_never_a_feature(self):
        assert () not in type_paths(type_of({"a": 1}))

    def test_top_level_key_set(self):
        tau = type_of({"a": 1, "b": 2})
        assert top_level_key_set(tau) == frozenset({"a", "b"})


class TestFeatureVectorSet:
    def test_counts_and_distinct(self):
        types = [type_of({"a": 1}), type_of({"a": 2}), type_of({"b": 1})]
        fvs = extract_feature_vectors(types)
        assert fvs.total == 3
        assert fvs.distinct == 2

    def test_vocabulary_sorted_and_complete(self):
        types = [type_of({"b": 1}), type_of({"a": 1})]
        fvs = extract_feature_vectors(types)
        assert set(fvs.vocabulary()) == {("a",), ("b",)}

    def test_dense_matrix_roundtrip(self):
        types = [type_of({"a": 1, "b": 2}), type_of({"a": 1})]
        fvs = extract_feature_vectors(types)
        matrix, vocab, ordering = fvs.dense_matrix()
        assert matrix.shape == (2, 2)
        for row, vector in enumerate(ordering):
            present = {vocab[i] for i in range(len(vocab)) if matrix[row, i]}
            assert present == set(vector)

    def test_memory_estimates_positive(self):
        types = [type_of({"a": 1})]
        fvs = extract_feature_vectors(types)
        assert fvs.sparse_memory_bytes() > 0
        assert fvs.dense_memory_bytes() > 0


class TestMemoryProfile:
    def test_pruning_reduces_distinct_vectors(self):
        """Figure 5's effect: nested collections multiply distinct
        feature vectors; pruning collapses them."""
        types = []
        for index in range(40):
            record = {
                "id": index,
                "counts": {f"drug{index}_{j}": j for j in range(4)},
            }
            types.append(type_of(record))
        profile = feature_memory_profile(
            types, collection_paths=frozenset({("counts",)})
        )
        assert profile.pruned_distinct_vectors < profile.distinct_vectors
        assert profile.pruned_sparse_bytes < profile.sparse_bytes
        assert len(profile.rows()) == 4

    def test_dense_beats_sparse_on_mandatory_flat(self):
        """Dense encoding wins when most fields are mandatory."""
        types = [
            type_of({f"f{i}": 1 for i in range(30)}) for _ in range(20)
        ]
        profile = feature_memory_profile(types, frozenset())
        assert profile.dense_bytes < profile.sparse_bytes


class TestVocabularyCache:
    def test_vocabulary_computed_once(self):
        types = [type_of({"a": 1, "b": 2}), type_of({"a": 1})]
        fvs = extract_feature_vectors(types)
        first = fvs.vocabulary()
        assert fvs.vocabulary() is first  # cached, not recomputed

    def test_dense_matrix_reuses_cache(self):
        types = [type_of({"a": 1, "b": 2}), type_of({"b": 2})]
        fvs = extract_feature_vectors(types)
        vocab = fvs.vocabulary()
        _, dense_vocab, _ = fvs.dense_matrix()
        assert dense_vocab is vocab

    def test_invalidate_after_mutation(self):
        types = [type_of({"a": 1})]
        fvs = extract_feature_vectors(types)
        assert len(fvs.vocabulary()) == 1
        fvs.counts[frozenset({("zz",)})] = 1
        fvs.invalidate()
        assert len(fvs.vocabulary()) == 2
