"""Tests for the greedy set cover used by GreedyMerge."""

from hypothesis import given
from hypothesis import strategies as st

from repro.entities.set_cover import (
    cover_exists,
    greedy_set_cover,
    minimal_cover_size,
)

small_sets = st.frozensets(st.sampled_from("abcdefgh"), max_size=6)


def fs(*keys):
    return frozenset(keys)


class TestGreedySetCover:
    def test_single_superset_cover(self):
        cover = greedy_set_cover(fs("a", "b"), [fs("a", "b", "c")])
        assert cover == [0]

    def test_multi_set_cover(self):
        cover = greedy_set_cover(
            fs("a", "b", "c"), [fs("a"), fs("b"), fs("c", "a")]
        )
        assert cover is not None
        covered = set()
        for index in cover:
            covered |= [fs("a"), fs("b"), fs("c", "a")][index]
        assert fs("a", "b", "c") <= covered

    def test_no_cover(self):
        assert greedy_set_cover(fs("z"), [fs("a"), fs("b")]) is None

    def test_empty_target_with_candidates(self):
        assert greedy_set_cover(fs(), [fs("a")]) == []

    def test_empty_candidates_never_cover(self):
        assert greedy_set_cover(fs("a"), []) is None
        assert greedy_set_cover(fs(), []) is None

    def test_prefers_larger_overlap(self):
        cover = greedy_set_cover(
            fs("a", "b", "c"),
            [fs("a"), fs("a", "b", "c")],
        )
        assert cover == [1]

    @given(small_sets, st.lists(small_sets, max_size=6))
    def test_greedy_cover_is_valid(self, target, candidates):
        cover = greedy_set_cover(target, candidates)
        if cover is None:
            combined = set().union(*candidates) if candidates else set()
            assert not candidates or not target <= combined
        else:
            covered = set()
            for index in cover:
                covered |= candidates[index]
            assert target <= covered
            assert len(set(cover)) == len(cover)

    @given(small_sets, st.lists(small_sets, max_size=6))
    def test_cover_exists_consistent(self, target, candidates):
        assert cover_exists(target, candidates) == (
            greedy_set_cover(target, candidates) is not None
        )


class TestMinimalCoverSize:
    def test_exact_on_simple_case(self):
        assert minimal_cover_size(fs("a", "b"), [fs("a"), fs("b"), fs("a", "b")]) == 1

    def test_none_when_uncoverable(self):
        assert minimal_cover_size(fs("z"), [fs("a")]) is None

    @given(small_sets, st.lists(small_sets, min_size=1, max_size=5))
    def test_greedy_at_least_optimal(self, target, candidates):
        greedy = greedy_set_cover(target, candidates)
        optimal = minimal_cover_size(target, candidates)
        if greedy is None:
            assert optimal is None
        else:
            assert optimal is not None
            assert optimal <= len(greedy)
            # ln-approximation bound; tiny universes keep it tight.
            assert len(greedy) <= max(1, 3 * optimal)
