"""Tests for the interned bitset key-set universe."""

import pytest
from hypothesis import given

from repro.entities.keyset import (
    KeySetUniverse,
    bitset_enabled,
    entity_representation,
    iter_bits,
    set_entity_representation,
)
from tests.conftest import key_set_lists


def fs(*keys):
    return frozenset(keys)


class TestUniverse:
    def test_round_trip(self):
        universe = KeySetUniverse.from_key_sets([fs("a", "b"), fs("c")])
        for ks in (fs("a", "b"), fs("c"), fs("a"), fs()):
            assert universe.decode(universe.encode(ks)) == ks

    def test_decode_returns_interned_original(self):
        original = fs("a", "b")
        universe = KeySetUniverse.from_key_sets([original])
        assert universe.decode(universe.encode(original)) is original

    def test_subset_is_mask_containment(self):
        universe = KeySetUniverse.from_key_sets([fs("a", "b", "c"), fs("x")])
        small = universe.encode(fs("a", "c"))
        big = universe.encode(fs("a", "b", "c"))
        assert small & big == small
        assert not (universe.encode(fs("x")) & big)

    def test_encode_rejects_unknown_keys(self):
        universe = KeySetUniverse.from_key_sets([fs("a")])
        with pytest.raises(KeyError):
            universe.encode(fs("zzz"))

    def test_encode_partial_flags_unknown_keys(self):
        universe = KeySetUniverse.from_key_sets([fs("a", "b")])
        mask, complete = universe.encode_partial(fs("a", "zzz"))
        assert not complete
        assert universe.decode(mask) == fs("a")
        mask, complete = universe.encode_partial(fs("a", "b"))
        assert complete

    def test_sort_key_matches_repr_sort(self):
        key_sets = [fs("a", "b"), fs("ab"), fs("b"), fs()]
        universe = KeySetUniverse.from_key_sets(key_sets)
        for ks in key_sets:
            assert universe.sort_key(universe.encode(ks)) == tuple(
                sorted(repr(key) for key in ks)
            )

    @given(key_set_lists)
    def test_popcount_is_cardinality(self, key_sets):
        universe = KeySetUniverse.from_key_sets(key_sets)
        for ks in key_sets:
            assert universe.encode(ks).bit_count() == len(ks)

    @given(key_set_lists)
    def test_iter_bits_enumerates_members(self, key_sets):
        universe = KeySetUniverse.from_key_sets(key_sets)
        for ks in key_sets:
            keys = frozenset(
                universe.keys[bit] for bit in iter_bits(universe.encode(ks))
            )
            assert keys == ks


class TestRepresentationToggle:
    def test_default_is_bitset(self):
        assert entity_representation() == "bitset"
        assert bitset_enabled()

    def test_toggle_round_trip(self):
        previous = set_entity_representation("frozenset")
        try:
            assert previous == "bitset"
            assert not bitset_enabled()
        finally:
            set_entity_representation(previous)
        assert bitset_enabled()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_entity_representation("roaring")
