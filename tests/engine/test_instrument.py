"""Tests for timers and memory estimation."""

import time

from repro.engine.instrument import StageTimer, deep_size_bytes


class TestStageTimer:
    def test_accumulates_per_stage(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.01)
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        rows = timer.rows()
        assert [name for name, _, _ in rows] == ["a", "b"]
        assert rows[0][2] == 2  # two invocations of stage a
        assert timer.seconds("a") >= 0.01
        assert timer.milliseconds("a") >= 10.0

    def test_total(self):
        timer = StageTimer()
        with timer.stage("x"):
            pass
        assert timer.total_seconds >= 0.0
        assert timer.total_milliseconds == 1000.0 * timer.total_seconds

    def test_unknown_stage_is_zero(self):
        assert StageTimer().seconds("nope") == 0.0

    def test_exception_still_recorded(self):
        timer = StageTimer()
        try:
            with timer.stage("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert timer.seconds("boom") >= 0.0
        assert timer.rows()[0][2] == 1


class TestDeepSize:
    def test_larger_structures_cost_more(self):
        small = {"a": 1}
        large = {f"key{i}": list(range(10)) for i in range(100)}
        assert deep_size_bytes(large) > deep_size_bytes(small)

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        aliased = [shared, shared, shared]
        copied = [list(range(1000)), list(range(1000)), list(range(1000))]
        assert deep_size_bytes(aliased) < deep_size_bytes(copied)

    def test_cycles_terminate(self):
        loop = []
        loop.append(loop)
        assert deep_size_bytes(loop) > 0

    def test_slots_objects(self):
        from repro.jsontypes.types import type_of

        tau = type_of({"a": [1, 2, {"b": "c"}]})
        assert deep_size_bytes(tau) > 0
