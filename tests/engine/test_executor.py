"""Executor backends: equivalence, fallback, and scan-count exactness.

The contract under test is that a backend changes *where* per-partition
work runs, never *what* any operation returns or how many passes the
lineage records.  Property tests drive every ``LocalDataset`` operation
on all three backends and require identical results; scan-counting
tests re-assert the paper's pass counts (K-reduce: 1; staged JXPLAIN:
4 including parsing) under parallel execution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    Counters,
    LocalDataset,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    counters,
    default_executor,
    executor_names,
    resolve_executor,
    set_default_executor,
)
from repro.datasets import make_dataset
from repro.discovery import JxplainPipeline, KReduce
from repro.errors import EngineError


# Module-level ops so the process backend can pickle every task.

def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _explode(x):
    return [x, -x]


def _reverse_partition(partition):
    return list(reversed(partition))


def _zero():
    return (0, 1)


def _seq_op(acc, item):
    # Deliberately non-commutative in its parts: (sum, product-ish)
    return (acc[0] + item, (acc[1] * (item % 7 + 1)) % 1000003)


def _comb_op(left, right):
    return (left[0] + right[0], (left[1] * right[1]) % 1000003)


@pytest.fixture(scope="module")
def backends():
    """One long-lived executor per backend (pools are reusable)."""
    return [SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)]


def _datasets(records, num_partitions, backends):
    return [
        LocalDataset.from_records(records, num_partitions, executor=ex)
        for ex in backends
    ]


ints = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=40)
partition_counts = st.integers(min_value=1, max_value=7)


class TestBackendEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(records=ints, parts=partition_counts)
    def test_transformations_agree(self, backends, records, parts):
        results = []
        for ds in _datasets(records, parts, backends):
            out = (
                ds.map(_double)
                .filter(_is_even)
                .flat_map(_explode)
                .map_partitions(_reverse_partition)
            )
            results.append(out.collect())
        assert results[0] == results[1] == results[2]

    @settings(max_examples=20, deadline=None)
    @given(records=ints, parts=partition_counts)
    def test_aggregate_agrees(self, backends, records, parts):
        values = [
            ds.aggregate(_zero, _seq_op, _comb_op)
            for ds in _datasets(records, parts, backends)
        ]
        assert values[0] == values[1] == values[2]

    @settings(max_examples=20, deadline=None)
    @given(records=ints, parts=partition_counts)
    def test_tree_aggregate_agrees(self, backends, records, parts):
        values = [
            ds.tree_aggregate(_zero, _seq_op, _comb_op)
            for ds in _datasets(records, parts, backends)
        ]
        assert values[0] == values[1] == values[2]

    @settings(max_examples=10, deadline=None)
    @given(
        records=ints,
        parts=partition_counts,
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_sample_is_backend_independent(
        self, backends, records, parts, fraction, seed
    ):
        samples = [
            ds.sample(fraction, seed=seed).collect()
            for ds in _datasets(records, parts, backends)
        ]
        assert samples[0] == samples[1] == samples[2]

    def test_discoverers_identical_across_backends(self, backends):
        from repro.discovery.kreduce import merge_k, merge_k_schemas
        from repro.jsontypes import type_of
        from repro.schema.nodes import NEVER

        records = make_dataset("yelp-merged").generate(200, seed=3)
        types = [type_of(r) for r in records]
        reference_k = KReduce().discover(records)
        reference_j = JxplainPipeline().run(records).schema
        for ex in backends:
            pipeline = JxplainPipeline(executor=ex, num_partitions=4)
            assert pipeline.run(records).schema == reference_j
            folded = LocalDataset.from_records(
                types, 4, executor=ex
            ).tree_aggregate(
                lambda: NEVER,
                lambda acc, tau: merge_k_schemas(acc, merge_k([tau])),
                merge_k_schemas,
            )
            assert folded == reference_k


class TestScanCounting:
    """Pass counts tick in the driver, so they are exact per backend."""

    @pytest.mark.parametrize("spec", ["serial", "threads:3", "processes:2"])
    def test_pipeline_scans_are_exact(self, spec):
        records = make_dataset("github").generate(120, seed=1)
        ds = LocalDataset.from_records(records, 4, executor=spec)
        JxplainPipeline().run(ds)
        # map(type_of) + one aggregation per pass = 4 total scans.
        assert ds.scans == 4

    @pytest.mark.parametrize("spec", ["serial", "threads:3"])
    def test_kreduce_fold_single_scan(self, spec):
        from repro.discovery.kreduce import merge_k, merge_k_schemas
        from repro.jsontypes import type_of
        from repro.schema.nodes import NEVER

        records = make_dataset("pharma").generate(80, seed=1)
        types = [type_of(r) for r in records]
        ds = LocalDataset.from_records(types, 4, executor=spec)
        ds.tree_aggregate(
            lambda: NEVER,
            lambda acc, tau: merge_k_schemas(acc, merge_k([tau])),
            merge_k_schemas,
        )
        assert ds.scans == 1

    def test_every_op_ticks_once(self):
        ds = LocalDataset.from_records(list(range(20)), 3, executor="threads:2")
        assert ds.scans == 0
        ds2 = ds.map(_double)
        assert ds.scans == 1
        ds3 = ds2.filter(_is_even)
        assert ds.scans == 2
        ds3.aggregate(_zero, _seq_op, _comb_op)
        assert ds.scans == 3
        # Union is metadata-only: no pass over the data.
        ds2.union(ds3)
        assert ds.scans == 3


class TestProcessFallback:
    def test_unpicklable_closure_falls_back_serially(self):
        counters.reset()
        ds = LocalDataset.from_records(
            list(range(10)), 4, executor=ProcessExecutor(2)
        )
        bound = 5
        out = ds.map(lambda x: x + bound).collect()  # closure: unpicklable
        assert sorted(out) == [x + bound for x in range(10)]
        assert counters.get("executor.process_fallbacks") >= 1


class TestResolution:
    def test_spec_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("threads"), ThreadExecutor)
        ex = resolve_executor("threads:5")
        assert isinstance(ex, ThreadExecutor) and ex.workers == 5
        ex = resolve_executor("processes:2")
        assert isinstance(ex, ProcessExecutor) and ex.workers == 2

    def test_passthrough_and_default(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex
        assert resolve_executor(None) is default_executor()

    def test_bad_specs_raise(self):
        with pytest.raises(EngineError):
            resolve_executor("clusters:9")
        with pytest.raises(EngineError):
            resolve_executor("threads:0")
        with pytest.raises(EngineError):
            resolve_executor("threads:lots")

    def test_names_registry(self):
        assert set(executor_names()) == {"serial", "threads", "processes"}

    def test_set_default_round_trip(self):
        old = default_executor()
        try:
            set_default_executor("threads:2")
            assert isinstance(default_executor(), ThreadExecutor)
            ds = LocalDataset.from_records([1, 2, 3])
            assert isinstance(ds.executor, ThreadExecutor)
        finally:
            set_default_executor(old)

    def test_with_executor_shares_scan_counter(self):
        ds = LocalDataset.from_records(list(range(9)), 3)
        threaded = ds.with_executor("threads:2")
        threaded.map(_double)
        assert ds.scans == 1
        assert threaded.collect() == ds.collect()
        assert sorted(ds.collect()) == list(range(9))


class TestCounters:
    def test_counters_object(self):
        c = Counters()
        c.add("a")
        c.add("a", 4)
        c.set("b", 7)
        assert c.get("a") == 5
        assert c.snapshot() == {"a": 5, "b": 7}
        c.reset()
        assert c.snapshot() == {}
        assert c.get("a") == 0
