"""The shard coordinator's mechanics: planning, ranged reads, report
re-basing, checkpoints, and cross-process counter accounting.

The byte-identity of sharded discovery itself is property-tested in
``tests/discovery/test_sharding_properties.py``; this file pins the
plumbing those properties stand on.
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.discovery.state import state_for_algorithm
from repro.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    counters,
)
from repro.engine.sharding import (
    MANIFEST_NAME,
    MIN_SHARD_BYTES,
    SHARDS_PER_WORKER,
    ShardCoordinator,
    default_shard_count,
    discover_sharded,
    plan_shards,
)
from repro.errors import CheckpointError, EngineError
from repro.io.fastpath import read_jsonlines_fused, split_byte_ranges
from repro.io.jsonlines import (
    merge_ingest_reports,
    read_jsonlines,
    IngestReport,
    write_jsonlines,
)


@pytest.fixture(scope="module")
def records():
    rows = []
    for index in range(400):
        row = {"id": index, "name": f"user-{index}"}
        if index % 3 == 0:
            row["tags"] = [str(index % 7)] * (index % 4 + 1)
        if index % 5 == 0:
            row["meta"] = {"depth": index % 9, "flag": index % 2 == 0}
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def corpus(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("shards") / "corpus.jsonl"
    write_jsonlines(path, records)
    return path


def serial_state_bytes(path, algorithm: str) -> bytes:
    """The ground truth: a serial sequential scan of the file."""
    state = state_for_algorithm(algorithm, None)
    for tau in read_jsonlines_fused(path):
        state.absorb_type(tau)
    return state.to_bytes()


class TestPlanning:
    def test_ranges_partition_the_file(self, corpus):
        size = os.path.getsize(corpus)
        for shards in (2, 3, 5, 8):
            plan = plan_shards(corpus, shards, workers=4)
            assert plan.splittable
            assert plan.ranges[0][0] == 0
            assert plan.ranges[-1][1] == size
            for (_, left_end), (right_start, _) in zip(
                plan.ranges, plan.ranges[1:]
            ):
                assert left_end == right_start
            # Every boundary is newline-aligned: the byte before each
            # interior boundary is a record terminator.
            data = corpus.read_bytes()
            for start, _ in plan.ranges[1:]:
                assert data[start - 1] == ord("\n")

    def test_more_shards_than_lines_collapses(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        write_jsonlines(path, [{"a": 1}, {"b": 2}])
        plan = plan_shards(path, 64, workers=4)
        # Ranges never split mid-record; duplicate boundaries collapse.
        assert 1 <= plan.shard_count <= 2

    def test_gzip_and_empty_fall_back_to_whole_file(self, tmp_path):
        gz = tmp_path / "corpus.jsonl.gz"
        with gzip.open(gz, "wt", encoding="utf-8") as handle:
            handle.write('{"a": 1}\n')
        assert split_byte_ranges(gz, 4) is None
        assert plan_shards(gz, 4, workers=2).ranges == ((0, None),)

        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert split_byte_ranges(empty, 4) is None
        assert plan_shards(empty, 4, workers=2).ranges == ((0, None),)

    def test_adaptive_shard_count(self):
        # Small files collapse to one shard; large files are bounded
        # by shards-per-worker.
        assert default_shard_count(0, 4) == 1
        assert default_shard_count(MIN_SHARD_BYTES - 1, 4) == 1
        assert (
            default_shard_count(MIN_SHARD_BYTES * 100, 4)
            == 4 * SHARDS_PER_WORKER
        )
        assert default_shard_count(MIN_SHARD_BYTES * 3, 4) == 3

    def test_invalid_shard_count(self, corpus):
        with pytest.raises(EngineError):
            plan_shards(corpus, 0, workers=2)


class TestRangedReads:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_classic_ranges_concatenate_to_whole_file(
        self, corpus, records, shards
    ):
        ranges = split_byte_ranges(corpus, shards)
        seen = []
        for start, end in ranges:
            seen.extend(read_jsonlines(corpus, start=start, end=end))
        assert seen == records

    def test_merged_report_rebases_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = ['{"ok": %d}' % i for i in range(40)]
        lines[7] = "{broken"
        lines[29] = "also broken"
        path.write_text("\n".join(lines) + "\n")

        whole = IngestReport(path=str(path), policy="collect")
        list(read_jsonlines(path, on_bad_record="collect", report=whole))

        shard_reports = []
        for start, end in split_byte_ranges(path, 3):
            report = IngestReport(path=str(path), policy="collect")
            list(
                read_jsonlines(
                    path,
                    on_bad_record="collect",
                    report=report,
                    start=start,
                    end=end,
                )
            )
            shard_reports.append(report)
        merged = merge_ingest_reports(
            shard_reports, path=str(path), policy="collect"
        )
        assert merged.total_lines == whole.total_lines
        assert merged.record_count == whole.record_count
        assert merged.bad_line_numbers() == whole.bad_line_numbers() == [
            8,
            30,
        ]
        assert [bad.byte_offset for bad in merged.bad_records] == [
            bad.byte_offset for bad in whole.bad_records
        ]


class TestCoordinator:
    @pytest.mark.parametrize("algorithm", ["l-reduce", "k-reduce", "jxplain"])
    def test_state_bytes_match_serial(self, corpus, algorithm):
        expected = serial_state_bytes(corpus, algorithm)
        result = discover_sharded(corpus, algorithm, shards=4)
        assert result.state.to_bytes() == expected
        assert result.plan.shard_count == 4
        assert result.report.record_count == 400

    def test_thread_backend_matches(self, corpus):
        executor = ThreadExecutor(2)
        try:
            result = discover_sharded(
                corpus, "jxplain", executor=executor, shards=4
            )
        finally:
            executor.close()
        assert result.state.to_bytes() == serial_state_bytes(
            corpus, "jxplain"
        )

    def test_merge_fanin_must_be_at_least_two(self):
        with pytest.raises(EngineError):
            ShardCoordinator("jxplain", merge_fanin=1)

    def test_unknown_algorithm_rejected_before_fanout(self):
        with pytest.raises(ValueError):
            ShardCoordinator("no-such-algorithm")

    def test_collect_policy_reports_whole_file_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = ['{"ok": %d}' % i for i in range(60)]
        lines[41] = "{nope"
        path.write_text("\n".join(lines) + "\n")
        result = discover_sharded(
            path, "l-reduce", shards=3, on_bad_record="collect"
        )
        assert result.report.bad_line_numbers() == [42]
        assert result.report.record_count == 59

    def test_empty_file_yields_empty_state(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        result = discover_sharded(path, "l-reduce", shards=4)
        assert result.state.record_count == 0


class TestCheckpoints:
    def test_resume_reuses_completed_shards(self, corpus, tmp_path):
        ckpt = tmp_path / "shards"
        first = discover_sharded(
            corpus, "jxplain", shards=4, checkpoint_dir=ckpt
        )
        assert first.resumed_shards == 0
        states = sorted(p.name for p in ckpt.glob("shard-*.state"))
        assert len(states) == 4
        assert (ckpt / MANIFEST_NAME).exists()

        second = discover_sharded(
            corpus, "jxplain", shards=4, checkpoint_dir=ckpt
        )
        assert second.resumed_shards == 4
        assert second.state.to_bytes() == first.state.to_bytes()
        assert (
            second.report.bad_line_numbers()
            == first.report.bad_line_numbers()
        )
        assert second.report.record_count == first.report.record_count

    def test_manifest_mismatch_fails_loudly(self, corpus, tmp_path):
        ckpt = tmp_path / "shards"
        discover_sharded(corpus, "jxplain", shards=4, checkpoint_dir=ckpt)
        with pytest.raises(CheckpointError):
            discover_sharded(
                corpus, "l-reduce", shards=4, checkpoint_dir=ckpt
            )
        with pytest.raises(CheckpointError):
            discover_sharded(
                corpus, "jxplain", shards=2, checkpoint_dir=ckpt
            )

    def test_manifest_content(self, corpus, tmp_path):
        ckpt = tmp_path / "shards"
        discover_sharded(corpus, "jxplain", shards=2, checkpoint_dir=ckpt)
        manifest = json.loads((ckpt / MANIFEST_NAME).read_text())
        assert manifest["path"] == str(corpus)
        assert manifest["algorithm"] == "jxplain"
        assert manifest["file_size"] == os.path.getsize(corpus)
        assert len(manifest["ranges"]) == 2


class TestCounterFlush:
    def test_process_workers_flush_deltas_to_driver(self, corpus):
        """Satellite: ``counters.snapshot()`` is accurate under the
        process backend — per-worker ingest/intern work shows up in
        the driver's counters via the shipped deltas."""
        executor = ProcessExecutor(2)
        before = counters.snapshot()
        try:
            discover_sharded(corpus, "jxplain", executor=executor, shards=4)
        finally:
            executor.close()
        after = counters.snapshot()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        # All 400 records were ingested in workers, none in the driver;
        # without the flush this counter would stay at 0.
        assert delta("ingest.fused_records") == 400
        assert delta("sharding.shards_completed") == 4
        assert delta("sharding.runs") == 1
        assert delta("sharding.shards") == 4

    def test_serial_backend_does_not_double_count(self, corpus):
        before = counters.snapshot()
        discover_sharded(
            corpus, "jxplain", executor=SerialExecutor(), shards=4
        )
        after = counters.snapshot()
        # Same-process results already mutated the shared counters;
        # the driver must not add their deltas again.
        assert (
            after.get("ingest.fused_records", 0)
            - before.get("ingest.fused_records", 0)
            == 400
        )
        assert (
            after.get("sharding.shards_completed", 0)
            - before.get("sharding.shards_completed", 0)
            == 4
        )


class TestShardedDataset:
    def test_from_jsonlines_sharded_matches_records(self, corpus, records):
        from repro.engine import LocalDataset

        dataset = LocalDataset.from_jsonlines_sharded(corpus, shards=3)
        assert dataset.num_partitions == 3
        assert dataset.collect() == records
        assert dataset.ingest_report.record_count == len(records)

    def test_from_jsonlines_sharded_fused(self, corpus):
        from repro.engine import LocalDataset
        from repro.jsontypes.types import JsonType

        dataset = LocalDataset.from_jsonlines_sharded(
            corpus, shards=3, ingest="fused"
        )
        collected = dataset.collect()
        assert len(collected) == 400
        assert all(isinstance(tau, JsonType) for tau in collected)
