"""Tests for the partitioned dataflow substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.dataset import LocalDataset
from repro.errors import EngineError

int_lists = st.lists(st.integers(-100, 100), max_size=30)


class TestConstruction:
    def test_round_robin_partitioning(self):
        dataset = LocalDataset.from_records(range(10), 3)
        assert dataset.num_partitions == 3
        assert sorted(dataset.collect()) == list(range(10))

    def test_invalid_partition_count(self):
        with pytest.raises(EngineError):
            LocalDataset.from_records([1], 0)

    def test_empty_dataset(self):
        dataset = LocalDataset.from_records([], 4)
        assert dataset.is_empty()
        assert dataset.count() == 0


class TestTransformations:
    def test_map(self):
        dataset = LocalDataset.from_records([1, 2, 3], 2)
        assert sorted(dataset.map(lambda x: x * 2).collect()) == [2, 4, 6]

    def test_filter(self):
        dataset = LocalDataset.from_records(range(10), 2)
        assert sorted(dataset.filter(lambda x: x % 2 == 0).collect()) == [
            0, 2, 4, 6, 8,
        ]

    def test_flat_map(self):
        dataset = LocalDataset.from_records([1, 2], 2)
        assert sorted(dataset.flat_map(lambda x: [x, x]).collect()) == [
            1, 1, 2, 2,
        ]

    def test_map_partitions(self):
        dataset = LocalDataset.from_records(range(6), 3)
        summed = dataset.map_partitions(lambda part: [sum(part)])
        assert sum(summed.collect()) == 15

    def test_union(self):
        first = LocalDataset.from_records([1, 2], 1)
        second = LocalDataset.from_records([3], 1)
        assert sorted(first.union(second).collect()) == [1, 2, 3]

    def test_sample_deterministic(self):
        dataset = LocalDataset.from_records(range(1000), 4)
        first = dataset.sample(0.1, seed=42).collect()
        second = dataset.sample(0.1, seed=42).collect()
        assert first == second
        assert 40 < len(first) < 200

    def test_sample_bounds(self):
        dataset = LocalDataset.from_records([1], 1)
        with pytest.raises(EngineError):
            dataset.sample(1.5)

    def test_repartition_preserves_records(self):
        dataset = LocalDataset.from_records(range(10), 2)
        again = dataset.repartition(5)
        assert again.num_partitions == 5
        assert sorted(again.collect()) == list(range(10))

    def test_iteration(self):
        dataset = LocalDataset.from_records([1, 2, 3], 2)
        assert sorted(dataset) == [1, 2, 3]


class TestAggregation:
    @given(int_lists, st.integers(1, 6))
    def test_aggregate_equals_sum(self, items, partitions):
        dataset = LocalDataset.from_records(items, partitions)
        total = dataset.aggregate(
            lambda: 0, lambda acc, x: acc + x, lambda a, b: a + b
        )
        assert total == sum(items)

    @given(int_lists, st.integers(1, 6))
    def test_tree_aggregate_equals_aggregate(self, items, partitions):
        dataset = LocalDataset.from_records(items, partitions)
        flat = dataset.aggregate(
            lambda: 0, lambda acc, x: acc + x, lambda a, b: a + b
        )
        tree = dataset.tree_aggregate(
            lambda: 0, lambda acc, x: acc + x, lambda a, b: a + b
        )
        assert flat == tree

    def test_mutable_accumulator_safety(self):
        dataset = LocalDataset.from_records(range(10), 3)

        def seq(acc, item):
            acc.append(item)
            return acc

        def comb(a, b):
            a.extend(b)
            return a

        collected = dataset.aggregate(list, seq, comb)
        assert sorted(collected) == list(range(10))

    def test_reduce(self):
        dataset = LocalDataset.from_records([1, 2, 3, 4], 2)
        assert dataset.reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_rejected(self):
        with pytest.raises(EngineError):
            LocalDataset.from_records([], 1).reduce(lambda a, b: a)


class TestScanCounting:
    def test_scans_accumulate_over_lineage(self):
        dataset = LocalDataset.from_records(range(10), 2)
        assert dataset.scans == 0
        mapped = dataset.map(lambda x: x)
        assert dataset.scans == 1
        mapped.count()
        assert dataset.scans == 2
        mapped.aggregate(lambda: 0, lambda a, x: a, lambda a, b: a)
        assert mapped.scans == 3

    def test_kreduce_one_pass_jxplain_three_passes(
        self, login_serve_stream
    ):
        """The pass structure of Figure 3, observed via scan counts."""
        from repro.discovery.kreduce import merge_k, merge_k_schemas
        from repro.discovery.pipeline import JxplainPipeline
        from repro.jsontypes.types import type_of
        from repro.schema.nodes import NEVER

        types = [type_of(r) for r in login_serve_stream]

        kreduce_data = LocalDataset.from_records(types, 4)
        kreduce_data.tree_aggregate(
            lambda: NEVER,
            lambda acc, tau: merge_k_schemas(acc, merge_k([tau])),
            merge_k_schemas,
        )
        assert kreduce_data.scans == 1

        jxplain_data = LocalDataset.from_records(types, 4)
        JxplainPipeline().run(jxplain_data)
        # parse map + three aggregation passes.
        assert jxplain_data.scans == 4
