"""Tests for collection detection (§5, Algorithm 5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heuristics.collection import (
    CollectionEvidence,
    DEFAULT_ENTROPY_THRESHOLD,
    Designation,
    decide_designation,
    is_collection_arrays,
    is_collection_objects,
    key_space_entropy,
    length_entropy,
    shannon_entropy,
)
from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import type_of


def object_types(values):
    return [type_of(value) for value in values]


class TestEntropyMath:
    def test_example7_key_space_entropy(self):
        """Example 7 of the paper: Figure 1's two records score 0.70."""
        counts = {"ts": 2, "event": 2, "user": 1, "files": 1}
        entropy = key_space_entropy(counts, record_count=2)
        # -2 * 0.5 ln 0.5 = ln 2 ≈ 0.693, which the paper rounds to 0.70.
        assert entropy == pytest.approx(2 * 0.5 * math.log(2), abs=1e-9)
        assert round(entropy, 1) == 0.7

    def test_universal_keys_have_zero_entropy(self):
        assert key_space_entropy({"a": 5, "b": 5}, 5) == 0.0

    def test_empty_input(self):
        assert key_space_entropy({}, 0) == 0.0
        assert shannon_entropy([], 10) == 0.0

    def test_length_entropy_uniform(self):
        # 4 lengths, equally likely: ln 4.
        counts = {1: 5, 2: 5, 3: 5, 4: 5}
        assert length_entropy(counts, 20) == pytest.approx(math.log(4))

    @given(st.dictionaries(st.text(min_size=1, max_size=3), st.integers(1, 50), min_size=1, max_size=10))
    def test_entropy_nonnegative(self, counts):
        total = max(counts.values())
        assert key_space_entropy(counts, total) >= 0.0


class TestObjectDetection:
    def test_stable_keys_are_tuple(self):
        values = [{"a": i, "b": str(i)} for i in range(50)]
        assert not is_collection_objects(object_types(values))

    def test_varying_keys_same_type_are_collection(self):
        values = [
            {f"key{i}": 1.0, f"key{i+1}": 2.0, f"key{i+2}": 3.0}
            for i in range(0, 150, 3)
        ]
        assert is_collection_objects(object_types(values))

    def test_varying_keys_mixed_kinds_are_tuple(self):
        # High key variation but values mix kinds per record: Algorithm
        # 5 short-circuits to Tuple on its E_T check.
        values = [
            {f"key{i}": 1.0, f"other{i}": "text"} for i in range(100)
        ]
        assert not is_collection_objects(object_types(values))

    def test_dissimilar_nested_types_are_tuple(self):
        # Keys vary but two nested values have dissimilar object types.
        values = []
        for i in range(60):
            if i % 2 == 0:
                values.append({f"key{i}": {"x": 1.0}})
            else:
                values.append({f"key{i}": {"x": "s"}})
        assert not is_collection_objects(object_types(values))

    def test_nulls_do_not_break_similarity(self):
        values = [{f"key{i}": None if i % 3 == 0 else 1.0} for i in range(90)]
        assert is_collection_objects(object_types(values))

    def test_evidence_out_parameter(self):
        sink = []
        is_collection_objects(object_types([{"a": 1}]), evidence_out=sink)
        assert len(sink) == 1
        assert sink[0].record_count == 1


class TestArrayDetection:
    def test_fixed_length_pairs_are_tuple(self):
        """Geo coordinates: always 2 numbers (§3.1)."""
        values = [[1.0 * i, -2.0 * i] for i in range(50)]
        assert not is_collection_arrays(object_types(values))

    def test_varying_lengths_are_collection(self):
        values = [["x"] * (i % 12) for i in range(120)]
        assert is_collection_arrays(object_types(values))

    def test_varying_lengths_mixed_kinds_are_tuple(self):
        values = [[1.0, "a", True][: (i % 3) + 1] for i in range(60)]
        assert not is_collection_arrays(object_types(values))


class TestEvidence:
    def test_add_rejects_wrong_kind(self):
        evidence = CollectionEvidence(Kind.OBJECT)
        with pytest.raises(ValueError):
            evidence.add(type_of([1]))

    def test_merge_rejects_mismatched_kinds(self):
        with pytest.raises(ValueError):
            CollectionEvidence(Kind.OBJECT).merge(
                CollectionEvidence(Kind.ARRAY)
            )

    def test_merge_equals_sequential(self):
        values = [{"a": 1}, {"b": 2.0}, {"a": 3, "c": 4}]
        types = object_types(values)
        sequential = CollectionEvidence(Kind.OBJECT)
        for tau in types:
            sequential.add(tau)
        left = CollectionEvidence(Kind.OBJECT)
        left.add(types[0])
        right = CollectionEvidence(Kind.OBJECT)
        right.add(types[1])
        right.add(types[2])
        merged = left.merge(right)
        assert merged.record_count == sequential.record_count
        assert merged.key_counts == sequential.key_counts
        assert merged.entropy == pytest.approx(sequential.entropy)
        assert merged.elements_similar == sequential.elements_similar

    def test_max_length_and_distinct_keys(self):
        evidence = CollectionEvidence(Kind.ARRAY)
        evidence.add(type_of([1, 2, 3]))
        evidence.add(type_of([1]))
        assert evidence.max_length == 3
        evidence = CollectionEvidence(Kind.OBJECT)
        evidence.add(type_of({"a": 1, "b": 2}))
        assert evidence.distinct_keys == 2


class TestThreshold:
    def test_threshold_boundary(self):
        """Entropy exactly at the threshold stays Tuple (Algorithm 5
        line 11 uses <=)."""
        evidence = CollectionEvidence(Kind.OBJECT)
        # Build evidence with entropy just below / above 1.0.
        for i in range(100):
            evidence.add(type_of({f"k{i % 4}": 1.0}))
        # Four keys at P=0.25: entropy = ln 4 ≈ 1.386 > 1 → collection.
        assert evidence.entropy == pytest.approx(math.log(4))
        assert (
            decide_designation(evidence, DEFAULT_ENTROPY_THRESHOLD)
            is Designation.COLLECTION
        )
        # With a higher threshold the same evidence is a tuple.
        assert (
            decide_designation(evidence, 2.0) is Designation.TUPLE
        )

    def test_default_threshold_is_one(self):
        assert DEFAULT_ENTROPY_THRESHOLD == 1.0
