"""Per-dataset structural assertions on the discovered schemas.

For each corpus analogue, assert that JXPLAIN finds exactly the
structures the paper highlights: which paths become collections, which
stay tuples, and which entities emerge.
"""

import pytest

from repro.datasets import make_dataset
from repro.discovery import (
    Jxplain,
    JxplainConfig,
    StatTree,
    decide_collections,
)
from repro.heuristics import Designation
from repro.jsontypes import STAR, type_of
from repro.jsontypes.kinds import Kind
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    iter_branches,
)


def decisions_for(name, n=400, seed=7, config=None):
    records = make_dataset(name).generate(n, seed=seed)
    tree = StatTree.from_types(
        [type_of(r) for r in records],
        similarity_depth=(config.similarity_depth if config else None),
    )
    return decide_collections(tree, config or JxplainConfig()), records


class TestPharma:
    def test_drug_map_is_the_only_object_collection(self):
        decisions, _ = decisions_for("pharma")
        collections = [
            path
            for (path, kind), d in decisions.items()
            if d is Designation.COLLECTION and kind == Kind.OBJECT
        ]
        assert collections == [("cms_prescription_counts",)]

    def test_provider_variables_stay_a_tuple(self):
        decisions, _ = decisions_for("pharma")
        assert (
            decisions[(("provider_variables",), Kind.OBJECT)]
            is Designation.TUPLE
        )


class TestSynapse:
    def test_two_level_signature_collection(self):
        decisions, _ = decisions_for("synapse", n=800)
        assert (
            decisions[(("signatures",), Kind.OBJECT)]
            is Designation.COLLECTION
        )
        assert (
            decisions[(("signatures", STAR), Kind.OBJECT)]
            is Designation.COLLECTION
        )

    def test_hashes_stay_tuples(self):
        decisions, _ = decisions_for("synapse", n=800)
        assert decisions[(("hashes",), Kind.OBJECT)] is Designation.TUPLE


class TestYelpCheckin:
    def test_two_level_pivot_collection(self):
        decisions, _ = decisions_for("yelp-checkin")
        assert decisions[(("time",), Kind.OBJECT)] is Designation.COLLECTION
        assert (
            decisions[(("time", STAR), Kind.OBJECT)]
            is Designation.COLLECTION
        )


class TestTwitter:
    def test_geo_pair_is_a_tuple(self):
        records = make_dataset("twitter").generate(500, seed=7)
        schema = Jxplain().discover(records)
        geo_objects = []
        for entity in iter_branches(schema):
            if (
                not isinstance(entity, ObjectTuple)
                or "coordinates" not in entity.all_keys
            ):
                continue
            coordinates = entity.field_schema("coordinates")
            geo_objects.extend(
                branch
                for branch in iter_branches(coordinates)
                if isinstance(branch, ObjectTuple)
                and "coordinates" in branch.all_keys
            )
        assert geo_objects
        pair = geo_objects[0].field_schema("coordinates")
        assert isinstance(pair, ArrayTuple)
        assert len(pair.elements) == 2

    def test_hashtag_arrays_are_collections(self):
        decisions, _ = decisions_for("twitter", n=500)
        assert (
            decisions[(("entities", "hashtags"), Kind.ARRAY)]
            is Designation.COLLECTION
        )

    def test_delete_notice_is_its_own_entity(self):
        records = make_dataset("twitter").generate(500, seed=7)
        schema = Jxplain().discover(records)
        deletes = [
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple)
            and branch.all_keys == frozenset({"delete"})
        ]
        assert len(deletes) == 1


class TestWikidata:
    def test_bounded_similarity_unlocks_linked_data_collections(self):
        config = JxplainConfig(similarity_depth=3)
        decisions, _ = decisions_for(
            "wikidata", n=150, config=config
        )
        for path in (("labels",), ("claims",), ("sitelinks",)):
            assert (
                decisions[(path, Kind.OBJECT)] is Designation.COLLECTION
            ), path

    def test_literal_similarity_blocks_claims(self):
        decisions, _ = decisions_for("wikidata", n=150)
        assert decisions[(("claims",), Kind.OBJECT)] is Designation.TUPLE


class TestGithub:
    def test_payload_entities_match_event_types(self):
        records = make_dataset("github").generate(1500, seed=7)
        schema = Jxplain().discover(records)
        entities = [
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple)
        ]
        # Every discovered entity carries the shared envelope.
        for entity in entities:
            assert {"id", "type", "actor", "repo", "payload"} <= (
                entity.all_keys
            )
        # And the count is near the number of generated event types
        # (subset-payload events may fold together).
        assert 6 <= len(entities) <= 11


class TestNyt:
    def test_multimedia_collection_with_entity_union(self):
        records = make_dataset("nyt").generate(500, seed=7)
        schema = Jxplain().discover(records)
        article = next(iter_branches(schema))
        multimedia = article.field_schema("multimedia")
        assert isinstance(multimedia, ArrayCollection)
        element_entities = [
            branch
            for branch in iter_branches(multimedia.element)
            if isinstance(branch, ObjectTuple)
        ]
        # The three media entities survive inside the collection.
        assert len(element_entities) == 3
