"""End-to-end discovery + validation across every dataset generator.

These are the slowest tests in the suite; sizes are kept laptop-quick
while still exercising every generator against every discoverer.
"""

import pytest

from repro.datasets import PAPER_DATASETS, make_dataset
from repro.discovery import Jxplain, JxplainNaive, JxplainPipeline, KReduce, LReduce
from repro.io.sampling import train_test_split
from repro.jsontypes.types import type_of
from repro.schema.entropy import schema_entropy
from repro.validation.validator import recall_against

SMALL = {
    "wikidata": 60,
    "twitter": 150,
    "github": 250,
    "synapse": 250,
    "nyt": 150,
    "pharma": 150,
}


def load(name, seed=0):
    size = SMALL.get(name, 250)
    return make_dataset(name).generate(size, seed=seed)


@pytest.mark.parametrize("name", PAPER_DATASETS)
class TestEveryDataset:
    def test_all_discoverers_cover_training(self, name):
        records = load(name)
        for discoverer in (LReduce(), KReduce(), Jxplain(), JxplainNaive()):
            schema = discoverer.discover(records)
            for record in records[:50]:
                assert schema.admits_value(record), (
                    f"{discoverer.name} rejected a training record of "
                    f"{name}"
                )

    def test_entropy_ordering(self, name):
        """L-reduce <= Bimax-Merge <= K-reduce does not hold in general
        (collections can flip it), but L-reduce is always minimal."""
        records = load(name)
        types = [type_of(r) for r in records]
        l_entropy = schema_entropy(LReduce().merge_types(types))
        k_entropy = schema_entropy(KReduce().merge_types(types))
        j_entropy = schema_entropy(Jxplain().merge_types(types))
        assert l_entropy <= k_entropy + 1e-6
        assert l_entropy <= j_entropy + 1e-6

    def test_generalization_ordering(self, name):
        """Held-out recall: K-reduce and JXPLAIN dominate L-reduce."""
        records = load(name, seed=1)
        split = train_test_split(records, seed=2)
        test_types = [type_of(r) for r in split.test]
        l_recall = recall_against(
            LReduce().discover(split.train), test_types
        )
        k_recall = recall_against(
            KReduce().discover(split.train), test_types
        )
        j_recall = recall_against(
            Jxplain().discover(split.train), test_types
        )
        assert k_recall >= l_recall - 1e-9
        assert j_recall >= l_recall - 1e-9


class TestHeadlineShapes:
    """The paper's headline claims, at reduced scale."""

    def test_pharma_collection_generalization(self):
        records = make_dataset("pharma").generate(400, seed=3)
        split = train_test_split(records, seed=3)
        test_types = [type_of(r) for r in split.test]
        sample = split.train[: len(split.train) // 10]
        jx = recall_against(Jxplain().discover(sample), test_types)
        kr = recall_against(KReduce().discover(sample), test_types)
        assert jx == 1.0
        assert jx > kr

    def test_synapse_signature_generalization(self):
        records = make_dataset("synapse").generate(800, seed=3)
        split = train_test_split(records, seed=3)
        test_types = [type_of(r) for r in split.test]
        sample = split.train[: len(split.train) // 5]
        jx = recall_against(Jxplain().discover(sample), test_types)
        kr = recall_against(KReduce().discover(sample), test_types)
        assert jx > kr

    def test_multi_entity_precision_on_github(self):
        records = make_dataset("github").generate(800, seed=4)
        types = [type_of(r) for r in records]
        jx = schema_entropy(Jxplain().merge_types(types))
        kr = schema_entropy(KReduce().merge_types(types))
        assert jx < kr

    def test_yelp_merged_precision(self):
        records = make_dataset("yelp-merged").generate(800, seed=5)
        types = [type_of(r) for r in records]
        jx = schema_entropy(Jxplain().merge_types(types))
        kr = schema_entropy(KReduce().merge_types(types))
        assert jx < kr

    def test_pipeline_equivalence_on_real_shapes(self):
        """Structural equality where nested bags coincide with global
        paths (github's payload split, pharma's collection)."""
        for name in ("github", "pharma"):
            records = load(name, seed=6)
            reference = Jxplain().discover(records)
            staged = JxplainPipeline().discover(records)
            assert staged == reference, name

    def test_pipeline_behavioral_closeness_on_nested_entities(self):
        """Where the reference partitions nested bags per root entity
        and the pipeline partitions them per global path, the schemas
        may differ structurally but must stay behaviourally close:
        both admit all training data, with similar entropy."""
        records = load("yelp-merged", seed=6)
        reference = Jxplain().discover(records)
        staged = JxplainPipeline().discover(records)
        for record in records:
            assert reference.admits_value(record)
            assert staged.admits_value(record)
        ref_entropy = schema_entropy(reference)
        stg_entropy = schema_entropy(staged)
        assert stg_entropy == pytest.approx(ref_entropy, rel=0.5)
