"""Integration tests that replay the paper's worked examples."""

import math

import pytest

from repro.datasets import FIGURE1_RECORDS
from repro.discovery import Jxplain, JxplainPipeline, KReduce, LReduce
from repro.heuristics.collection import key_space_entropy
from repro.jsontypes.types import type_of
from repro.schema.entropy import schema_entropy
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    iter_branches,
)


class TestExample1:
    """Existing discovery admits invalid mixtures of Figure 1's events."""

    def test_kreduce_admits_the_papers_false_positives(self):
        schema = KReduce().discover(FIGURE1_RECORDS)
        false_positive_both = {
            "ts": 9,
            "event": "huh",
            "user": {"name": "u", "geo": [0.0, 0.0]},
            "files": ["x"],
        }
        false_positive_neither = {"ts": 10, "event": "wat"}
        assert schema.admits_value(false_positive_both)
        assert schema.admits_value(false_positive_neither)

    def test_jxplain_rejects_them(self):
        schema = Jxplain().discover(FIGURE1_RECORDS * 5)
        assert not schema.admits_value({"ts": 10, "event": "wat"})


class TestExample3:
    """Naive discovery returns the set of the two distinct schemas."""

    def test_lreduce_two_branches(self):
        schema = LReduce().discover(FIGURE1_RECORDS)
        branches = list(iter_branches(schema))
        assert len(branches) == 2
        assert all(isinstance(b, ObjectTuple) for b in branches)
        assert all(not b.optional_keys for b in branches)


class TestExamples4and5:
    """Arrays: files merges to [string]*; geo should stay [ℝ, ℝ]."""

    def test_kreduce_files_collection(self):
        schema = KReduce().discover(FIGURE1_RECORDS)
        files = schema.field_schema("files")
        assert isinstance(files, ArrayCollection)

    def test_kreduce_overgeneralizes_geo(self):
        schema = KReduce().discover(FIGURE1_RECORDS)
        geo = schema.field_schema("user").field_schema("geo")
        assert isinstance(geo, ArrayCollection)  # the §3.1 complaint

    def test_jxplain_keeps_geo_a_tuple(self):
        schema = Jxplain().discover(FIGURE1_RECORDS * 5)
        login = next(
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple)
            and "user" in branch.all_keys
        )
        geo = login.field_schema("user").field_schema("geo")
        assert isinstance(geo, ArrayTuple)


class TestExample6:
    """Collection-like objects: prescription counts."""

    def test_pharma_style_collection(self):
        records = [
            {
                "cms_prescription_counts": {
                    f"DRUG {i}": i + 11,
                    f"DRUG {i + 1}": i + 12,
                    f"DRUG {i + 2}": i + 13,
                }
            }
            for i in range(0, 120, 3)
        ]
        schema = Jxplain().discover(records)
        counts = schema.field_schema("cms_prescription_counts")
        assert isinstance(counts, ObjectCollection)
        # Generalizes to new medications, which K-reduce cannot.
        new_drug = {"cms_prescription_counts": {"BRAND NEW": 26}}
        assert schema.admits_value(new_drug)
        assert not KReduce().discover(records).admits_value(new_drug)


class TestExample7:
    """The worked key-space entropy number: E_K = 0.70."""

    def test_figure1_entropy(self):
        types = [type_of(r) for r in FIGURE1_RECORDS]
        counts = {}
        for tau in types:
            for key in tau.keys():
                counts[key] = counts.get(key, 0) + 1
        entropy = key_space_entropy(counts, len(types))
        assert entropy == pytest.approx(math.log(2), abs=1e-12)
        assert f"{entropy:.2f}" == "0.69"  # the paper rounds to 0.70


class TestExample8:
    """S1 (two entities) is preferred over S2 (optional fields)."""

    def test_schema_matches_s1(self, login_serve_stream):
        schema = Jxplain().discover(login_serve_stream)
        entities = [
            branch
            for branch in iter_branches(schema)
            if isinstance(branch, ObjectTuple)
        ]
        assert len(entities) == 2
        for entity in entities:
            # S1 has no optional fields at the root.
            assert not entity.optional_keys

    def test_s1_has_lower_entropy_than_s2(self, login_serve_stream):
        s1 = Jxplain().discover(login_serve_stream)
        s2 = KReduce().discover(login_serve_stream)
        assert schema_entropy(s1) < schema_entropy(s2)


class TestPipelineAgreesOnExamples:
    def test_pipeline_matches_reference(self, login_serve_stream):
        assert JxplainPipeline().discover(
            login_serve_stream
        ) == Jxplain().discover(login_serve_stream)
