"""Failure injection and adversarial-input robustness.

Discovery must behave sensibly on inputs real feeds actually contain:
unicode and hostile key names, enormous numbers, deep nesting, mixed
root kinds, empty containers everywhere, and keys that collide with
the path-rendering syntax.
"""

import math

import pytest

from repro.discovery import (
    Jxplain,
    JxplainPipeline,
    KReduce,
    LReduce,
)
from repro.errors import RecursionDepthError
from repro.jsontypes.paths import render_path
from repro.jsontypes.types import type_of
from repro.schema.entropy import schema_entropy
from repro.schema.jsonschema import from_json_schema, to_json_schema
from repro.schema.render import render

ALL_DISCOVERERS = (LReduce(), KReduce(), Jxplain(), JxplainPipeline())


def roundtrip_all(records):
    """Discover with every algorithm; each must admit its training."""
    for discoverer in ALL_DISCOVERERS:
        schema = discoverer.discover(records)
        for record in records:
            assert schema.admits_value(record), discoverer.name
        # The schema must survive export/import and keep its entropy.
        restored = from_json_schema(to_json_schema(schema))
        assert restored == schema
        assert schema_entropy(restored) == schema_entropy(schema)
        # And render without crashing.
        render(schema, compact=True)


class TestHostileKeys:
    def test_unicode_keys(self):
        records = [
            {"日本語": 1, "naïve": "x", "🎉emoji": [True]},
            {"日本語": 2, "ключ": None},
        ]
        roundtrip_all(records)

    def test_keys_with_path_syntax(self):
        records = [
            {"a.b": 1, "c[0]": "x", "$": True, "*": None, "": 0},
            {"a.b": 2, "": 1},
        ]
        roundtrip_all(records)
        # Rendering a path containing such keys must not crash (the
        # dotted notation is display-only and may be ambiguous).
        schema = Jxplain().discover(records)
        render_path(("a.b", "c[0]", ""))

    def test_very_long_keys(self):
        key = "k" * 10_000
        roundtrip_all([{key: 1}, {key: 2}])

    def test_whitespace_and_control_keys(self):
        records = [{" ": 1, "\t": "x", "\n": True}]
        roundtrip_all(records)


class TestExtremeValues:
    def test_huge_and_tiny_numbers(self):
        records = [
            {"n": 10**300, "m": -(10**300), "f": 1e-308},
            {"n": 0, "m": 0.5, "f": float(10**18)},
        ]
        roundtrip_all(records)

    def test_non_finite_floats(self):
        # json.loads never produces these, but defensive callers might.
        records = [{"x": math.inf}, {"x": -math.inf}, {"x": math.nan}]
        schema = Jxplain().discover(records)
        assert schema.admits_value({"x": 1.0})

    def test_huge_strings(self):
        records = [{"s": "x" * 100_000}, {"s": ""}]
        roundtrip_all(records)


class TestShapesAtTheEdges:
    def test_mixed_root_kinds(self):
        records = [1, "two", None, True, [1, 2], {"a": 1}, []]
        roundtrip_all(records)

    def test_all_empty_containers(self):
        roundtrip_all([{}, {}, {}])
        roundtrip_all([[], [], []])

    def test_single_record(self):
        roundtrip_all([{"only": {"one": [1, "x", None]}}])

    def test_null_everywhere(self):
        records = [
            {"a": None, "b": [None, None], "c": {"d": None}},
            {"a": 1, "b": [None], "c": {"d": "x"}},
        ]
        roundtrip_all(records)

    def test_many_identical_records(self):
        roundtrip_all([{"a": 1, "b": [True]}] * 500)

    def test_wide_object(self):
        record = {f"field_{i}": i for i in range(2_000)}
        roundtrip_all([record])

    def test_wide_array(self):
        roundtrip_all([[float(i) for i in range(2_000)]])


class TestDepthLimits:
    def _nested(self, depth):
        value = 1
        for _ in range(depth):
            value = {"nest": value}
        return value

    def test_moderately_deep_ok(self):
        roundtrip_all([self._nested(40)])

    def test_configured_depth_guard_fires(self):
        from repro.discovery import JxplainConfig, jxplain_merge

        deep = type_of(self._nested(30))
        with pytest.raises(RecursionDepthError):
            jxplain_merge([deep], JxplainConfig(max_depth=10))

    def test_type_extraction_guard(self):
        from repro.errors import RecursionDepthError as TypeGuard

        with pytest.raises(TypeGuard):
            type_of(self._nested(50), max_depth=20)


class TestHeterogeneousStress:
    def test_every_field_changes_kind(self):
        """A pathological stream where each field's kind alternates."""
        records = []
        for index in range(40):
            records.append(
                {
                    "x": index if index % 2 else str(index),
                    "y": [index] if index % 3 else {"v": index},
                    "z": None if index % 5 else True,
                }
            )
        roundtrip_all(records)

    def test_entity_explosion_bounded(self):
        """1 000 records with random field subsets must not produce a
        schema anywhere near 1 000 entities after GreedyMerge."""
        import random

        rng = random.Random(0)
        fields = [f"f{i}" for i in range(12)]
        records = []
        for _ in range(1_000):
            chosen = rng.sample(fields, rng.randint(3, 9))
            records.append({name: 1 for name in chosen})
        schema = Jxplain().discover(records)
        from repro.schema.nodes import top_level_entity_count

        assert top_level_entity_count(schema) <= 20
